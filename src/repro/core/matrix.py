"""The thread matrix ``M`` — the paper's central data structure (§3).

``M`` is conceptually an ``N' × k`` 0/1 matrix: one row per current node,
one column per server thread, exactly ``d`` ones per row.  An implicit
server row of all ones sits above everything.  The network topology is
read off the columns: within a column, consecutive ones form a chain of
unit-bandwidth thread segments, and the bottom-most one in each column
owns that column's *hanging thread* (an open slot a future node can clip).

Representation.  Rather than a dense matrix with row shifting, each row
carries an arrival *key* (see :mod:`repro.core.keys`) and each column
stores its occupants as a key-sorted list.  This supports, in O(d log N):

* ``join`` — insert a row (at the bottom for append keys, at a uniformly
  random height for uniform keys);
* ``leave`` — delete a row, splicing each column chain (the good-bye
  protocol and the end state of a repair);
* ``drop_thread`` / ``add_thread`` — §5 congestion handling (turn a one
  into a zero and back).

The matrix is purely structural: it knows nothing about failures, which
are tracked by the server registry and applied at analysis time.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

import numpy as np

from .keys import AppendKeys, KeyAllocator

#: Virtual node id of the server (the implicit all-ones top row).
SERVER = -1


@dataclass
class Row:
    """One matrix row: a node's arrival key and its set of one-columns."""

    node_id: int
    key: float
    columns: set[int]

    @property
    def degree(self) -> int:
        """Number of ones in the row (the node's thread count)."""
        return len(self.columns)


class ThreadMatrix:
    """The matrix ``M`` with key-ordered rows and per-column chains.

    Args:
        k: Number of server threads (columns).
        allocator: Key allocation strategy; defaults to append ordering.
    """

    def __init__(self, k: int, allocator: Optional[KeyAllocator] = None) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self._allocator: KeyAllocator = allocator or AppendKeys()
        self._rows: dict[int, Row] = {}
        # Per-column key-sorted occupancy: parallel (keys, ids) lists.
        self._col_keys: list[list[float]] = [[] for _ in range(k)]
        self._col_ids: list[list[int]] = [[] for _ in range(k)]
        # Global key-sorted row order, maintained incrementally (one
        # O(log N) bisect per join/leave) so ``node_ids`` is a copy, not
        # a fresh O(N log N) sort — simulators and failure models read
        # the row order every slot, which dominates at 10k-peer scale.
        self._order_keys: list[float] = []
        self._order_ids: list[int] = []
        #: Monotone counter bumped by every structural mutation (join,
        #: leave, drop_thread, add_thread).  Consumers cache derived
        #: topology (chains, children maps) keyed on this value and
        #: invalidate only when it moves — see ``BroadcastSimulation``.
        self.mutation_epoch = 0

    # ------------------------------------------------------------------
    # Introspection

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._rows

    @property
    def node_ids(self) -> list[int]:
        """All current node ids, in arrival-key (i.e. matrix row) order."""
        return list(self._order_ids)

    def row(self, node_id: int) -> Row:
        """The row of ``node_id``; KeyError if absent."""
        return self._rows[node_id]

    def columns_of(self, node_id: int) -> frozenset[int]:
        """The columns where ``node_id``'s row has ones."""
        return frozenset(self._rows[node_id].columns)

    def column_chain(self, column: int) -> list[int]:
        """Node ids with a one in ``column``, top (oldest key) to bottom."""
        return list(self._col_ids[column])

    def hanging_owner(self, column: int) -> int:
        """Owner of the hanging thread of ``column`` (``SERVER`` if empty)."""
        ids = self._col_ids[column]
        return ids[-1] if ids else SERVER

    def hanging_owners(self) -> list[int]:
        """Owner of each of the k hanging threads, indexed by column."""
        return [self.hanging_owner(c) for c in range(self.k)]

    def to_dense(self) -> np.ndarray:
        """Materialise ``M`` as a dense 0/1 array (tests and tiny nets)."""
        order = self.node_ids
        dense = np.zeros((len(order), self.k), dtype=np.uint8)
        for i, node_id in enumerate(order):
            for col in self._rows[node_id].columns:
                dense[i, col] = 1
        return dense

    # ------------------------------------------------------------------
    # Neighbour queries (chain structure)

    def parent_in_column(self, node_id: int, column: int) -> int:
        """The node directly above ``node_id`` in ``column`` (or SERVER)."""
        index = self._index_in_column(node_id, column)
        ids = self._col_ids[column]
        return ids[index - 1] if index > 0 else SERVER

    def child_in_column(self, node_id: int, column: int) -> Optional[int]:
        """The node directly below ``node_id`` in ``column`` (None = hanging)."""
        index = self._index_in_column(node_id, column)
        ids = self._col_ids[column]
        return ids[index + 1] if index + 1 < len(ids) else None

    def parents_of(self, node_id: int) -> dict[int, int]:
        """Map column -> parent node id (SERVER allowed) for each thread."""
        return {
            column: self.parent_in_column(node_id, column)
            for column in self._rows[node_id].columns
        }

    def children_of(self, node_id: int) -> dict[int, Optional[int]]:
        """Map column -> child node id (None when the thread hangs)."""
        return {
            column: self.child_in_column(node_id, column)
            for column in self._rows[node_id].columns
        }

    def _index_in_column(self, node_id: int, column: int) -> int:
        row = self._rows[node_id]
        if column not in row.columns:
            raise KeyError(f"node {node_id} has no thread in column {column}")
        keys = self._col_keys[column]
        index = bisect_left(keys, row.key)
        # keys are unique so this is exact
        assert self._col_ids[column][index] == node_id
        return index

    # ------------------------------------------------------------------
    # Mutation: the hello / good-bye primitives

    def join(
        self,
        node_id: int,
        d: int,
        rng: np.random.Generator,
        columns: Optional[Sequence[int]] = None,
    ) -> Row:
        """Insert a new row with ``d`` ones.

        The columns are chosen uniformly at random without replacement
        unless given explicitly.  Returns the created :class:`Row`.
        """
        if node_id in self._rows:
            raise ValueError(f"node {node_id} already present")
        if not 1 <= d <= self.k:
            raise ValueError(f"d={d} out of range for k={self.k}")
        if columns is None:
            chosen = rng.choice(self.k, size=d, replace=False)
            column_set = {int(c) for c in chosen}
        else:
            column_set = {int(c) for c in columns}
            if len(column_set) != len(columns):
                raise ValueError("duplicate columns in explicit choice")
            if len(column_set) != d:
                raise ValueError("explicit columns must have length d")
            if not all(0 <= c < self.k for c in column_set):
                raise ValueError("column index out of range")
        key = self._allocator.next_key()
        row = Row(node_id=node_id, key=key, columns=column_set)
        self._rows[node_id] = row
        index = bisect_left(self._order_keys, key)
        self._order_keys.insert(index, key)
        self._order_ids.insert(index, node_id)
        for column in column_set:
            self._insert_into_column(column, key, node_id)
        return row

    def leave(self, node_id: int) -> Row:
        """Delete a row, splicing every column it occupied.

        This is the structural effect of both a graceful leave and a
        completed repair: each parent thread reattaches directly to the
        corresponding child (Lemma 1).
        """
        row = self._rows.pop(node_id)
        index = bisect_left(self._order_keys, row.key)
        assert self._order_ids[index] == node_id  # keys are unique
        self._order_keys.pop(index)
        self._order_ids.pop(index)
        for column in row.columns:
            self._remove_from_column(column, row.key, node_id)
        return row

    def drop_thread(self, node_id: int, column: Optional[int] = None,
                    rng: Optional[np.random.Generator] = None) -> int:
        """§5 congestion: give up one thread (turn a one into a zero).

        The node splices itself out of one column only — its parent there
        connects directly to its child.  Returns the dropped column.
        A node keeps at least one thread; dropping the last raises.
        """
        row = self._rows[node_id]
        if row.degree <= 1:
            raise ValueError("cannot drop the last thread of a node")
        if column is None:
            if rng is None:
                raise ValueError("need a column or an rng to pick one")
            column = int(rng.choice(sorted(row.columns)))
        if column not in row.columns:
            raise KeyError(f"node {node_id} has no thread in column {column}")
        self._remove_from_column(column, row.key, node_id)
        row.columns.discard(column)
        return column

    def add_thread(self, node_id: int, column: Optional[int] = None,
                   rng: Optional[np.random.Generator] = None) -> int:
        """§5 recovery: re-acquire a thread (turn a random zero into a one).

        The node splices itself into the chosen column at its own key
        height.  Returns the added column.
        """
        row = self._rows[node_id]
        if row.degree >= self.k:
            raise ValueError("node already occupies every column")
        if column is None:
            if rng is None:
                raise ValueError("need a column or an rng to pick one")
            free = [c for c in range(self.k) if c not in row.columns]
            column = int(rng.choice(free))
        if column in row.columns:
            raise ValueError(f"node {node_id} already has a thread in column {column}")
        self._insert_into_column(column, row.key, node_id)
        row.columns.add(column)
        return column

    # ------------------------------------------------------------------
    # Edges

    def iter_edges(self) -> Iterator[tuple[int, int, int]]:
        """Yield ``(parent, child, column)`` for every thread segment.

        The parent may be ``SERVER``.  Hanging threads produce no edge.
        Parallel edges (two columns joining the same pair) appear once per
        column.
        """
        for column in range(self.k):
            ids = self._col_ids[column]
            previous = SERVER
            for node_id in ids:
                yield previous, node_id, column
                previous = node_id

    def edge_multiplicities(self) -> dict[tuple[int, int], int]:
        """Aggregate parallel thread segments into ``(u, v) -> count``."""
        counts: dict[tuple[int, int], int] = {}
        for parent, child, _ in self.iter_edges():
            pair = (parent, child)
            counts[pair] = counts.get(pair, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # Internals

    def _insert_into_column(self, column: int, key: float, node_id: int) -> None:
        keys = self._col_keys[column]
        index = bisect_left(keys, key)
        keys.insert(index, key)
        self._col_ids[column].insert(index, node_id)
        self.mutation_epoch += 1

    def _remove_from_column(self, column: int, key: float, node_id: int) -> None:
        keys = self._col_keys[column]
        index = bisect_left(keys, key)
        if index >= len(keys) or self._col_ids[column][index] != node_id:
            raise KeyError(f"node {node_id} not found in column {column}")
        keys.pop(index)
        self._col_ids[column].pop(index)
        self.mutation_epoch += 1

    # ------------------------------------------------------------------
    # Invariant checking (used heavily by property tests)

    def check_invariants(self) -> None:
        """Assert internal consistency; raises AssertionError on violation."""
        seen_keys = set()
        for node_id, row in self._rows.items():
            assert row.node_id == node_id
            assert 1 <= row.degree <= self.k
            assert row.key not in seen_keys, "duplicate arrival key"
            seen_keys.add(row.key)
        for column in range(self.k):
            keys = self._col_keys[column]
            ids = self._col_ids[column]
            assert len(keys) == len(ids)
            assert keys == sorted(keys), f"column {column} keys unsorted"
            for key, node_id in zip(keys, ids):
                row = self._rows.get(node_id)
                assert row is not None, f"ghost node {node_id} in column {column}"
                assert row.key == key
                assert column in row.columns
        for node_id, row in self._rows.items():
            for column in row.columns:
                assert node_id in self._col_ids[column]
        assert len(self._order_ids) == len(self._rows)
        assert self._order_keys == sorted(self._order_keys), "row order unsorted"
        for key, node_id in zip(self._order_keys, self._order_ids):
            row = self._rows.get(node_id)
            assert row is not None, f"ghost node {node_id} in row order"
            assert row.key == key, f"row-order key drift for node {node_id}"
