"""Arrival keys: the row-ordering mechanism of the thread matrix.

The paper's matrix ``M`` orders rows by arrival.  Section 3 appends each
new row at the bottom; Section 5 hardens the system against coordinated
adversaries by inserting each new row at a *uniformly random position*.

Both modes are captured by giving every row a totally ordered *key*:

* append mode — keys are an increasing counter, so a new row is always
  last (the §3 behaviour);
* uniform mode — keys are iid U(0, 1) draws, so the rank of a new row
  among the existing rows is uniform (exactly the §5 random insertion).

Keys make random insertion as cheap as appending: per-column occupancy
lists stay sorted by key and a join is d binary searches.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np


class KeyAllocator(Protocol):
    """Strategy that hands out one ordering key per joining row."""

    def next_key(self) -> float:
        """Return a key strictly orderable against all previous keys."""
        ...


class AppendKeys:
    """Monotonically increasing keys: §3's append-at-the-bottom ordering."""

    def __init__(self) -> None:
        self._counter = 0

    def next_key(self) -> float:
        self._counter += 1
        return float(self._counter)


class UniformKeys:
    """IID uniform keys: §5's random row insertion.

    A fresh draw is rejected (and redrawn) on the measure-zero event of a
    collision with an existing key, so ordering stays strict.
    """

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng
        self._used: set[float] = set()

    def next_key(self) -> float:
        while True:
            key = float(self._rng.random())
            if key not in self._used:
                self._used.add(key)
                return key
