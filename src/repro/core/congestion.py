"""§5 congestion handling: shed threads under pressure, re-add when calm.

The paper: "Suppose a node becomes congested on either its incoming or
outgoing links and would like to reduce its load.  The node picks a child
and a parent and joins them directly. [...] When the node sees that its
congestion is gone for a sufficient length of time, it tries to increase
its rate of obtaining data."

:class:`CongestionController` implements that policy as a small state
machine per node, driven by periodic congestion observations (which the
simulator or an application supplies — e.g. packet-loss measurements per
[11]).
"""

from __future__ import annotations

from dataclasses import dataclass

from .server import CoordinationServer


@dataclass
class _NodeCongestionState:
    congested_streak: int = 0
    calm_streak: int = 0
    shed_count: int = 0


@dataclass
class CongestionEvent:
    """One thread change made by the controller."""

    node_id: int
    action: str  # "drop" or "restore"
    column: int


class CongestionController:
    """Hysteresis policy: drop a thread after ``drop_after`` consecutive
    congested observations; restore one after ``restore_after`` calm ones.

    Args:
        server: The coordination server to negotiate with.
        drop_after: Congested observations required before shedding.
        restore_after: Calm observations required before re-adding.
        min_degree: Never shed below this many threads (>= 1).
    """

    def __init__(
        self,
        server: CoordinationServer,
        drop_after: int = 2,
        restore_after: int = 4,
        min_degree: int = 1,
    ) -> None:
        if min_degree < 1:
            raise ValueError("min_degree must be >= 1")
        if drop_after < 1 or restore_after < 1:
            raise ValueError("thresholds must be >= 1")
        self.server = server
        self.drop_after = drop_after
        self.restore_after = restore_after
        self.min_degree = min_degree
        self._state: dict[int, _NodeCongestionState] = {}
        self.events: list[CongestionEvent] = []

    def observe(self, node_id: int, congested: bool) -> CongestionEvent | None:
        """Feed one congestion observation for ``node_id``.

        Returns the thread change made, if any.
        """
        if node_id not in self.server.registry:
            raise KeyError(f"unknown node {node_id}")
        state = self._state.setdefault(node_id, _NodeCongestionState())
        if congested:
            state.congested_streak += 1
            state.calm_streak = 0
            degree = self.server.matrix.row(node_id).degree
            if state.congested_streak >= self.drop_after and degree > self.min_degree:
                column = self.server.congestion_drop(node_id)
                state.congested_streak = 0
                state.shed_count += 1
                event = CongestionEvent(node_id=node_id, action="drop", column=column)
                self.events.append(event)
                return event
        else:
            state.calm_streak += 1
            state.congested_streak = 0
            info = self.server.registry[node_id]
            nominal = info.nominal_degree
            degree = self.server.matrix.row(node_id).degree
            if state.calm_streak >= self.restore_after and degree < nominal:
                column = self.server.congestion_restore(node_id)
                state.calm_streak = 0
                state.shed_count = max(0, state.shed_count - 1)
                event = CongestionEvent(node_id=node_id, action="restore", column=column)
                self.events.append(event)
                return event
        return None

    def shed_count(self, node_id: int) -> int:
        """How many threads ``node_id`` has currently shed."""
        state = self._state.get(node_id)
        return state.shed_count if state else 0
