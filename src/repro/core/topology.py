"""Topology derivation: from the thread matrix to the working overlay DAG.

The matrix defines a *physical* topology — per column, a chain of thread
segments from the server down through every occupant.  Failures do not
restructure the matrix until repair completes; a failed node simply stops
relaying, so every thread segment into or out of it is dead.  The
*working* graph therefore equals the physical graph with failed vertices
(and all their incident edges) removed.

Because nodes always clip *hanging* threads (which dangle strictly below
every existing occupant of the column) and row order is fixed at join
time, the physical graph is a DAG: every edge goes from an earlier key to
a later key — the §6 acyclicity invariant.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import AbstractSet, Optional

from .matrix import SERVER, ThreadMatrix


@dataclass
class OverlayGraph:
    """A multigraph snapshot of the overlay.

    Attributes:
        nodes: Working node ids (excluding the server).
        succ: Adjacency with multiplicities, ``u -> {v: multiplicity}``.
            ``SERVER`` appears as a source vertex.
        pred: Reverse adjacency.
    """

    nodes: set[int] = field(default_factory=set)
    succ: dict[int, dict[int, int]] = field(default_factory=dict)
    pred: dict[int, dict[int, int]] = field(default_factory=dict)

    def add_node(self, node_id: int) -> None:
        self.nodes.add(node_id)
        self.succ.setdefault(node_id, {})
        self.pred.setdefault(node_id, {})

    def add_edge(self, u: int, v: int, multiplicity: int = 1) -> None:
        self.succ.setdefault(u, {})
        self.pred.setdefault(v, {})
        self.succ[u][v] = self.succ[u].get(v, 0) + multiplicity
        self.pred[v][u] = self.pred[v].get(u, 0) + multiplicity

    def in_degree(self, node_id: int) -> int:
        """Incoming thread count (with multiplicity)."""
        return sum(self.pred.get(node_id, {}).values())

    def out_degree(self, node_id: int) -> int:
        """Outgoing thread count (with multiplicity)."""
        return sum(self.succ.get(node_id, {}).values())

    def edge_count(self) -> int:
        """Total thread segments (counting multiplicity)."""
        return sum(sum(targets.values()) for targets in self.succ.values())

    def parents(self, node_id: int) -> list[int]:
        """Distinct upstream neighbours of a node."""
        return list(self.pred.get(node_id, {}))

    def children(self, node_id: int) -> list[int]:
        """Distinct downstream neighbours of a node."""
        return list(self.succ.get(node_id, {}))

    # ------------------------------------------------------------------

    def depths_from_server(self) -> dict[int, int]:
        """Shortest hop distance from the server to each reachable node."""
        depths = {SERVER: 0}
        queue = deque([SERVER])
        while queue:
            u = queue.popleft()
            for v in self.succ.get(u, {}):
                if v not in depths:
                    depths[v] = depths[u] + 1
                    queue.append(v)
        depths.pop(SERVER)
        return depths

    def longest_depths_from_server(self) -> dict[int, int]:
        """Longest path length from the server (DAG only).

        For the acyclic curtain model this is the worst-case pipeline
        delay a node's data experiences; raises on cyclic graphs.
        """
        order = self.topological_order()
        longest: dict[int, int] = {SERVER: 0}
        for u in order:
            base = longest.get(u)
            if base is None:
                continue  # unreachable from server
            for v in self.succ.get(u, {}):
                if longest.get(v, -1) < base + 1:
                    longest[v] = base + 1
        longest.pop(SERVER, None)
        return longest

    def topological_order(self) -> list[int]:
        """Topological order including SERVER first; raises if cyclic."""
        indegree = {node: 0 for node in self.succ}
        for targets in self.succ.values():
            for v in targets:
                indegree[v] = indegree.get(v, 0) + 1
        indegree.setdefault(SERVER, 0)
        queue = deque(node for node, deg in indegree.items() if deg == 0)
        order = []
        while queue:
            u = queue.popleft()
            order.append(u)
            for v in self.succ.get(u, {}):
                indegree[v] -= 1
                if indegree[v] == 0:
                    queue.append(v)
        if len(order) != len(indegree):
            raise ValueError("overlay graph contains a cycle")
        return order

    def is_acyclic(self) -> bool:
        """True when the graph is a DAG (the §6 invariant)."""
        try:
            self.topological_order()
        except ValueError:
            return False
        return True

    def to_networkx(self):
        """Export to a networkx MultiDiGraph (test oracle / plotting)."""
        import networkx as nx

        graph = nx.MultiDiGraph()
        graph.add_node(SERVER)
        graph.add_nodes_from(self.nodes)
        for u, targets in self.succ.items():
            for v, multiplicity in targets.items():
                for _ in range(multiplicity):
                    graph.add_edge(u, v)
        return graph


def build_overlay_graph(
    matrix: ThreadMatrix,
    failed: Optional[AbstractSet[int]] = None,
) -> OverlayGraph:
    """Build the working overlay graph from the matrix.

    ``failed`` nodes are removed along with all their thread segments —
    their children receive nothing on those threads until repair.
    """
    failed = failed or frozenset()
    graph = OverlayGraph()
    for node_id in matrix.node_ids:
        if node_id not in failed:
            graph.add_node(node_id)
    for parent, child, _column in matrix.iter_edges():
        if child in failed:
            continue
        if parent != SERVER and parent in failed:
            continue
        graph.add_edge(parent, child)
    return graph


def hanging_thread_sources(
    matrix: ThreadMatrix,
    failed: Optional[AbstractSet[int]] = None,
) -> dict[int, int]:
    """Map column -> working owner of its hanging thread.

    Columns whose bottom occupant is failed are omitted: that hanging
    thread is dead until the failure is repaired.
    """
    failed = failed or frozenset()
    owners = {}
    for column in range(matrix.k):
        owner = matrix.hanging_owner(column)
        if owner == SERVER or owner not in failed:
            owners[column] = owner
    return owners
