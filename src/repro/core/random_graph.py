"""§6 variant: random-graph overlays trading acyclicity for low delay.

The curtain model keeps the overlay acyclic, so network coding loses no
throughput to delay spread — but the pipeline delay grows *linearly* in
the population (column chains have expected length ``N·d/k``).  Section 6
proposes the alternative: "each new user selects d random edges in the
existing network, and inserts itself at these edges."  The result is an
expander with high probability, so delay is *logarithmic*; the price is
that cycles may appear.

This module implements that construction with the same join/leave API
shape as the curtain overlay so the delay experiment (E6) can compare
them head-to-head.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from .matrix import SERVER
from .topology import OverlayGraph


class RandomGraphOverlay:
    """Edge-splitting random overlay (§6).

    Bootstrap: the server's ``k`` unit streams are dealt to the first
    ``ceil(k/d)`` joiners directly (each takes up to ``d`` server edges).
    Afterwards every joiner picks ``d`` uniformly random *edges* of the
    current graph and splices itself into each (edge ``u -> v`` becomes
    ``u -> new -> v``), preserving every existing node's degrees and
    giving the newcomer in-degree = out-degree = ``d``.

    Args:
        k: Server bandwidth in unit streams.
        d: Per-node bandwidth in unit streams.
        seed: Seed or Generator.
    """

    def __init__(self, k: int, d: int,
                 seed: Union[int, np.random.Generator, None] = None) -> None:
        if d < 1 or k < d:
            raise ValueError("need 1 <= d <= k")
        self.k = k
        self.d = d
        self.rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        self._next_id = 0
        self.nodes: set[int] = set()
        # Edge multiset as a list for O(1) uniform sampling; removal by
        # swap-pop.  Server slots not yet delegated are edges SERVER->None.
        self._edges: list[tuple[int, Optional[int]]] = [(SERVER, None)] * k

    @property
    def population(self) -> int:
        return len(self.nodes)

    @property
    def edges(self) -> list[tuple[int, Optional[int]]]:
        """Current edge multiset; ``(u, None)`` is an unserved slot."""
        return list(self._edges)

    def join(self) -> int:
        """Insert one node on ``d`` random edges; returns its id."""
        node_id = self._next_id
        self._next_id += 1
        picks = self.rng.choice(len(self._edges), size=self.d, replace=False)
        # Remove picked edges by descending index swap-pop to keep indices valid.
        picked_edges = [self._edges[int(i)] for i in picks]
        for index in sorted((int(i) for i in picks), reverse=True):
            self._edges[index] = self._edges[-1]
            self._edges.pop()
        for u, v in picked_edges:
            self._edges.append((u, node_id))
            self._edges.append((node_id, v))
        self.nodes.add(node_id)
        return node_id

    def grow(self, count: int) -> list[int]:
        """Insert ``count`` nodes; returns their ids."""
        return [self.join() for _ in range(count)]

    def leave(self, node_id: int) -> None:
        """Graceful leave: match each in-edge with one out-edge.

        The node's d parents are paired with its d children uniformly at
        random and joined directly — the random-graph analogue of the
        good-bye splice.
        """
        if node_id not in self.nodes:
            raise KeyError(f"unknown node {node_id}")
        in_edges = [(u, v) for (u, v) in self._edges if v == node_id]
        out_edges = [(u, v) for (u, v) in self._edges if u == node_id]
        assert len(in_edges) == len(out_edges) == self.d
        self._edges = [e for e in self._edges if e[0] != node_id and e[1] != node_id]
        order = self.rng.permutation(self.d)
        for (u, _), pick in zip(in_edges, order):
            _, v = out_edges[int(pick)]
            self._edges.append((u, v))
        self.nodes.discard(node_id)

    # ------------------------------------------------------------------

    def to_overlay_graph(self) -> OverlayGraph:
        """Materialise the current topology (unserved slots omitted)."""
        graph = OverlayGraph()
        for node in self.nodes:
            graph.add_node(node)
        for u, v in self._edges:
            if v is not None:
                graph.add_edge(u, v)
        return graph

    def depths_from_server(self) -> dict[int, int]:
        """Shortest hop distance from the server to each node."""
        return self.to_overlay_graph().depths_from_server()

    def is_acyclic(self) -> bool:
        """Random-graph overlays generally are NOT acyclic; check anyway."""
        return self.to_overlay_graph().is_acyclic()
