"""Property tests for the batched zero-copy data plane.

Two identities anchor this PR's perf work and must hold bit-for-bit:

* the batched wire codec (``encode_packets_into`` + offset-cursor
  streaming decode) produces and accepts exactly the frames of the
  scalar v2 codec — including legacy v1 frames, the maximal
  ``g = 0xFFFF`` geometry, and CRC-corruption rejection;
* ``Recoder.emit_batch(k)`` (and the fused ``emit_rows`` →
  ``encode_mixture_frames`` path) equals ``k`` sequential ``emit``
  calls under the same RNG stream, so turning batching on cannot
  change a single byte of any seeded trace.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding import CodedPacket, GenerationParams, Recoder, SourceEncoder
from repro.coding.buffers import BufferPool
from repro.coding.wire import (
    VERSION,
    VERSION_1,
    WireFormatError,
    decode_packet,
    encode_packet,
    encode_packets_into,
    frame_size,
    read_frame_at,
)
from repro.net.framing import (
    encode_data_frame,
    encode_data_frames,
    encode_mixture_frames,
)


def _random_packet(rng, g, n, generation=0, origin=-1):
    return CodedPacket(
        generation=generation,
        coefficients=rng.integers(0, 256, size=g, dtype=np.uint8),
        payload=rng.integers(0, 256, size=n, dtype=np.uint8),
        origin=origin,
    )


def _assert_packets_equal(a: CodedPacket, b: CodedPacket) -> None:
    assert a.generation == b.generation
    assert a.origin == b.origin
    assert np.array_equal(a.coefficients, b.coefficients)
    assert np.array_equal(a.payload, b.payload)


def _seeded_recoder(seed: int, params, generation_count: int,
                    fill: int, node_id: int = 9) -> Recoder:
    """A recoder with a deterministic partially-filled buffer.

    Built twice with the same ``seed`` it reaches the identical state,
    so the batched and scalar emission arms start from the same basis
    *and* the same RNG stream position.
    """
    feed = np.random.default_rng(1000 + seed)
    content = bytes(
        feed.integers(0, 256,
                      size=params.payload_size * params.generation_size * 2,
                      dtype=np.uint8)
    )
    encoder = SourceEncoder(content, params, np.random.default_rng(2000 + seed))
    recoder = Recoder(params, encoder.generation_count,
                      np.random.default_rng(seed), node_id=node_id)
    for _ in range(fill):
        recoder.receive(encoder.emit())
    return recoder


# ----------------------------------------------------------------------
# Batched wire codec vs the scalar codec


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    count=st.integers(min_value=1, max_value=8),
    uniform=st.booleans(),
    version=st.sampled_from([VERSION_1, VERSION]),
)
def test_batch_encode_is_byte_identical_to_scalar(seed, count, uniform, version):
    """``encode_packets_into`` frames == per-packet ``encode_packet``.

    Covers both the vectorised uniform-geometry fast path and the
    mixed-geometry fallback, for v1 and v2 frames alike.
    """
    rng = np.random.default_rng(seed)
    if uniform:
        g, n = int(rng.integers(1, 12)), int(rng.integers(0, 24))
        geometries = [(g, n)] * count
    else:
        geometries = [
            (int(rng.integers(1, 12)), int(rng.integers(0, 24)))
            for _ in range(count)
        ]
    packets = [
        _random_packet(rng, g, n,
                       generation=int(rng.integers(0, 2**16)),
                       origin=int(rng.integers(-1, 100)))
        for g, n in geometries
    ]
    pool = BufferPool()
    buf, spans = encode_packets_into(packets, version=version, pool=pool)
    try:
        frames = [bytes(memoryview(buf)[o:o + ln]) for o, ln in spans]
    finally:
        pool.release(buf)
    for packet, frame in zip(packets, frames):
        assert frame == encode_packet(packet, version=version)


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    count=st.integers(min_value=1, max_value=8),
    version=st.sampled_from([VERSION_1, VERSION]),
)
def test_streaming_decode_roundtrips_batch(seed, count, version):
    """Offset-cursor decode over one contiguous buffer recovers the batch."""
    rng = np.random.default_rng(seed)
    g, n = int(rng.integers(1, 12)), int(rng.integers(0, 24))
    packets = [
        _random_packet(rng, g, n, generation=i,
                       origin=int(rng.integers(-1, 100)))
        for i in range(count)
    ]
    buf, spans = encode_packets_into(packets, version=version)
    blob = bytes(memoryview(buf)[:sum(ln for _, ln in spans)])
    offset = 0
    for packet in packets:
        decoded, offset = read_frame_at(blob, offset)
        assert decoded is not None
        _assert_packets_equal(decoded, packet)
    # Exhausted: a cursor at the end reports "need more bytes".
    decoded, end = read_frame_at(blob, offset)
    assert decoded is None and end == offset == len(blob)


def test_max_generation_size_roundtrips():
    """The u16 geometry fields admit g = 0xFFFF; the batch path must too."""
    rng = np.random.default_rng(3)
    packets = [_random_packet(rng, 0xFFFF, 5, generation=i) for i in range(2)]
    buf, spans = encode_packets_into(packets)
    blob = bytes(memoryview(buf)[:sum(ln for _, ln in spans)])
    assert spans[0][1] == frame_size(0xFFFF, 5)
    offset = 0
    for packet in packets:
        assert blob[offset:offset + spans[0][1]] == encode_packet(packet)
        decoded, offset = read_frame_at(blob, offset)
        _assert_packets_equal(decoded, packet)


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    position=st.integers(min_value=0, max_value=2**31 - 1),
    flip=st.integers(min_value=1, max_value=255),
)
def test_any_corruption_is_rejected(seed, position, flip):
    """Flipping any byte of a v2 frame fails decode loudly (CRC/header)."""
    rng = np.random.default_rng(seed)
    packet = _random_packet(rng, int(rng.integers(1, 10)),
                            int(rng.integers(0, 16)))
    frame = bytearray(encode_packet(packet))
    frame[position % len(frame)] ^= flip
    with pytest.raises(WireFormatError):
        decode_packet(bytes(frame))
    # The streaming cursor either rejects it or reports an incomplete
    # frame (a corrupted length field may promise more bytes) — it must
    # never hand back a packet.
    try:
        decoded, _ = read_frame_at(bytes(frame), 0)
    except WireFormatError:
        return
    assert decoded is None


# ----------------------------------------------------------------------
# Batched recode vs sequential emission


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    count=st.integers(min_value=1, max_value=12),
    fill=st.integers(min_value=1, max_value=12),
    explicit=st.booleans(),
)
def test_emit_batch_matches_sequential_emits(seed, count, fill, explicit):
    """``emit_batch(k)`` == ``k`` x ``emit()`` under the same RNG stream."""
    params = GenerationParams(generation_size=4, payload_size=8)
    batched = _seeded_recoder(seed, params, 2, fill)
    scalar = _seeded_recoder(seed, params, 2, fill)
    generation = 0 if explicit else None
    got = batched.emit_batch(count, generation)
    expected = []
    for _ in range(count):
        packet = scalar.emit(generation)
        if packet is None:
            break
        expected.append(packet)
    assert len(got) == len(expected)
    for a, b in zip(got, expected):
        _assert_packets_equal(a, b)
    # Both RNG streams must land at the same point: the next draws agree.
    after_a = batched.emit(generation)
    after_b = scalar.emit(generation)
    assert (after_a is None) == (after_b is None)
    if after_a is not None:
        _assert_packets_equal(after_a, after_b)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    count=st.integers(min_value=1, max_value=12),
    fill=st.integers(min_value=1, max_value=12),
    explicit=st.booleans(),
)
def test_fused_mixture_frames_match_scalar_wire_path(seed, count, fill,
                                                     explicit):
    """``emit_rows`` → ``encode_mixture_frames`` == emit + frame, per byte.

    This is the peer fan-out fast path: mixtures go from the gemm
    output matrix straight to length-prefixed wire frames with no
    intermediate packets — the frames must still be exactly what the
    scalar path would have sent, in draw order.
    """
    params = GenerationParams(generation_size=4, payload_size=8)
    batched = _seeded_recoder(seed, params, 2, fill)
    scalar = _seeded_recoder(seed, params, 2, fill)
    generation = 0 if explicit else None
    groups = batched.emit_rows(count, generation)
    frames = encode_mixture_frames(groups, params.generation_size,
                                   origin=batched.node_id)
    expected = []
    for _ in range(count):
        packet = scalar.emit(generation)
        if packet is None:
            break
        expected.append(encode_data_frame(packet))
    assert frames == expected


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    count=st.integers(min_value=1, max_value=6),
    uniform=st.booleans(),
)
def test_encode_data_frames_matches_per_packet_framing(seed, count, uniform):
    """Batch framing (uniform and mixed geometry) == per-packet framing."""
    rng = np.random.default_rng(seed)
    if uniform:
        g, n = int(rng.integers(1, 10)), int(rng.integers(0, 16))
        geometries = [(g, n)] * count
    else:
        geometries = [
            (int(rng.integers(1, 10)), int(rng.integers(0, 16)))
            for _ in range(count)
        ]
    packets = [
        _random_packet(rng, g, n, generation=i,
                       origin=int(rng.integers(-1, 50)))
        for i, (g, n) in enumerate(geometries)
    ]
    assert encode_data_frames(packets) == [
        encode_data_frame(p) for p in packets
    ]


# ----------------------------------------------------------------------
# Buffer pool lifecycle


def test_buffer_pool_reuses_and_bounds_idle_memory():
    pool = BufferPool(max_per_bucket=1, min_capacity=64)
    first = pool.lease(10)
    assert len(first) == 64  # rounded up to the bucket capacity
    pool.release(first)
    again = pool.lease(64)
    assert again is first
    assert pool.stats.allocations == 1 and pool.stats.reuses == 1
    pool.release(again)
    pool.release(bytearray(64))  # bucket already full: dropped for the GC
    assert pool.stats.discarded == 1
    assert pool.idle_buffers() == 1
    big = pool.lease(100)
    assert len(big) == 128
    with pytest.raises(ValueError):
        pool.lease(-1)


def test_steady_state_batch_encoding_stops_allocating():
    """Repeated flushes through one pool converge to zero allocations."""
    rng = np.random.default_rng(7)
    pool = BufferPool()
    packets = [_random_packet(rng, 8, 64, generation=i) for i in range(16)]
    for _ in range(5):
        buf, _ = encode_packets_into(packets, pool=pool)
        pool.release(buf)
    assert pool.stats.allocations == 1
    assert pool.stats.reuses == pool.stats.leases - 1
