"""Unit tests for min-cut witnesses and loss-moment analytics."""

import pytest

from repro.analysis import cut_mentions_failed_parents, min_cut
from repro.theory import (
    binomial_loss_moments,
    binomial_loss_pmf,
    empirical_loss_moments,
    required_d_for_std,
)


class TestMinCut:
    def test_value_matches_connectivity(self, small_net):
        small_net.fail(small_net.matrix.node_ids[0])
        for node in small_net.working_nodes[:10]:
            value, cut = min_cut(small_net.matrix, node, small_net.failed)
            assert value == small_net.connectivity(node)
            assert len(cut) == value  # max-flow = min-cut

    def test_cut_is_separating(self, small_net):
        """Removing the witness edges really disconnects the node."""
        from repro.analysis import FlowNetwork
        from repro.core import SERVER, build_overlay_graph

        node = small_net.matrix.node_ids[-1]
        value, cut = min_cut(small_net.matrix, node)
        assert value == 3
        graph = build_overlay_graph(small_net.matrix)
        network = FlowNetwork()
        network.vertex(SERVER)
        remaining = dict()
        for u, targets in graph.succ.items():
            for v, mult in targets.items():
                remaining[(u, v)] = mult
        for pair in cut:
            remaining[pair] -= 1
        for (u, v), mult in remaining.items():
            if mult > 0:
                network.add_edge(u, v, mult)
        network.vertex(node)
        assert network.max_flow(SERVER, node) == 0

    def test_failed_node_empty_cut(self, small_net):
        victim = small_net.matrix.node_ids[3]
        small_net.fail(victim)
        assert min_cut(small_net.matrix, victim, small_net.failed) == (0, [])

    def test_unknown_node(self, small_net):
        assert min_cut(small_net.matrix, 9999) == (0, [])

    def test_local_containment_signature(self, small_net):
        """After a single failure, every degraded node's shortfall equals
        its failed-parent count (Theorem 4 locality, certified by cuts)."""
        victim = small_net.matrix.node_ids[0]
        small_net.fail(victim)
        for node in small_net.working_nodes:
            assert cut_mentions_failed_parents(
                small_net.matrix, node, small_net.failed
            )


class TestLossMoments:
    def test_model_moments(self):
        moments = binomial_loss_moments(4, 0.1)
        assert moments.mean == pytest.approx(0.1)
        assert moments.variance == pytest.approx(0.1 * 0.9 / 4)
        assert moments.std == pytest.approx((0.1 * 0.9 / 4) ** 0.5)

    def test_pmf_sums_to_one(self):
        pmf = binomial_loss_pmf(5, 0.2)
        assert len(pmf) == 6
        assert sum(pmf) == pytest.approx(1.0)

    def test_empirical_matches_model_on_binomial_data(self, rng):
        d, p = 4, 0.15
        losses = rng.binomial(d, p, size=30_000)
        empirical = empirical_loss_moments(list(losses), d)
        model = binomial_loss_moments(d, p)
        assert empirical.mean == pytest.approx(model.mean, abs=0.01)
        assert empirical.variance == pytest.approx(model.variance, rel=0.1)

    def test_required_d_sizing(self):
        # std(p=0.05, d) = sqrt(0.0475/d); target 0.05 -> d >= 19
        assert required_d_for_std(0.05, 0.05) == 19
        assert required_d_for_std(0.05, 1.0) == 1
        with pytest.raises(ValueError):
            required_d_for_std(0.5, 0.01, max_d=8)

    def test_validation(self):
        with pytest.raises(ValueError):
            binomial_loss_moments(0, 0.1)
        with pytest.raises(ValueError):
            binomial_loss_moments(4, 1.5)
        with pytest.raises(ValueError):
            empirical_loss_moments([], 4)
        with pytest.raises(ValueError):
            required_d_for_std(0.1, 0.0)

    def test_variance_decays_as_one_over_d(self):
        """The conjecture's 1/d law, in the model."""
        values = [binomial_loss_moments(d, 0.1).variance * d for d in (2, 4, 8)]
        assert max(values) - min(values) < 1e-12
