"""Tests for the scale layer: turbo virtual net, swarm rounds, soak runs.

Tier-1 keeps the populations modest (a couple hundred peers, seconds of
wall clock); the 10k acceptance round — the PR-9 headline — is marked
``slow`` and runs in the nightly lane next to the long soaks.
"""

import asyncio

import pytest

from repro.net.testing import (
    ChaosConfig,
    ChaosHarness,
    SoakConfig,
    SwarmConfig,
    SwarmHarness,
    VirtualClock,
    VirtualNetwork,
    run_soak,
    run_swarm_round,
)
from repro.net.testing.virtualnet import LinkFaults


# ----------------------------------------------------------------------
# Turbo network / quantum clock units


class TestTurboVirtualNet:
    def test_default_network_is_not_turbo(self):
        net = VirtualNetwork(VirtualClock(), seed=0)
        assert not net.turbo
        assert net.record_trace

    def test_turbo_round_trip_preserves_bytes(self):
        async def scenario():
            net = VirtualNetwork(VirtualClock(), seed=0, turbo=True,
                                 record_trace=False)
            received = []

            async def handler(reader, writer):
                received.append(await reader.readexactly(11))
                writer.close()

            net.bind("srv", 9000, handler)
            reader, writer = await net.open_connection("cli", "srv", 9000)
            writer.write(b"hello turbo")
            await writer.drain()
            await net.clock.advance(1.0)
            writer.close()
            await net.shutdown()
            return received

        assert asyncio.run(scenario()) == [b"hello turbo"]

    def test_turbo_writer_coalesces_writelines(self):
        async def scenario():
            net = VirtualNetwork(VirtualClock(), seed=0, turbo=True,
                                 record_trace=False)
            received = []

            async def handler(reader, writer):
                received.append(await reader.readexactly(6))
                writer.close()

            net.bind("srv", 9000, handler)
            reader, writer = await net.open_connection("cli", "srv", 9000)
            assert hasattr(writer, "writelines")
            writer.writelines([b"abc", b"def"])
            await writer.drain()
            await net.clock.advance(1.0)
            await net.shutdown()
            return received

        assert asyncio.run(scenario()) == [b"abcdef"]

    def test_port_allocation_wraps_before_uint16_overflow(self):
        """65k+ allocations must stay encodable as a wire port (>H)."""
        async def scenario():
            net = VirtualNetwork(VirtualClock(), seed=0, turbo=True,
                                 record_trace=False)

            async def handler(reader, writer):
                writer.close()

            listener = net.bind("srv", 9000, handler)
            ports = set()
            # Exhaust the ephemeral range: every bind must stay valid
            # and never collide with the listener.
            for i in range(70000):
                port = net._next_port("srv")
                assert 1024 <= port <= 65535, port
                assert (("srv", port)) not in net._listeners
                ports.add(port)
            listener.close()
            await net.shutdown()
            return ports

        ports = asyncio.run(scenario())
        assert 9000 not in ports  # the listener port was skipped on wrap

    def test_quantum_clock_batches_colocated_timers(self):
        """Timers within one quantum fire as a batch: every sleeper in
        the batch wakes at the *batch's* time, not its own."""
        async def scenario(quantum):
            clock = VirtualClock(quantum=quantum)
            wakes = []

            async def sleeper(delay):
                await clock.sleep(delay)
                wakes.append((delay, clock.time()))

            tasks = [
                asyncio.ensure_future(sleeper(d))
                for d in (1.0, 1.1, 1.2, 2.0)
            ]
            await asyncio.sleep(0)
            await clock.advance(5.0)
            await asyncio.gather(*tasks)
            return wakes

        # Default clock: each timer settles alone, at its own time.
        assert asyncio.run(scenario(0.0)) == [
            (1.0, 1.0), (1.1, 1.1), (1.2, 1.2), (2.0, 2.0),
        ]
        # Quantum clock: 1.0/1.1/1.2 fire together (all wake at 1.2);
        # 2.0 is outside the window and fires on its own.
        assert asyncio.run(scenario(0.25)) == [
            (1.0, 1.2), (1.1, 1.2), (1.2, 1.2), (2.0, 2.0),
        ]

    def test_firing_limit_raises_instead_of_hanging(self):
        async def scenario():
            clock = VirtualClock()
            clock.firing_limit = 50

            async def rearm():
                while True:
                    await clock.sleep(0.001)

            task = asyncio.ensure_future(rearm())
            with pytest.raises(RuntimeError, match="fired 50 timers"):
                await clock.advance(10.0)
            task.cancel()

        asyncio.run(scenario())

    def test_linkfaults_is_clean(self):
        assert LinkFaults().is_clean()
        assert not LinkFaults(loss=0.1).is_clean()
        assert not LinkFaults(latency=0.5).is_clean()
        assert not LinkFaults(partitioned=True).is_clean()


# ----------------------------------------------------------------------
# Settle failure reporting (the anti-hang fix)


class TestSettleFailure:
    def test_unquiesced_settle_records_violation_and_dump(self):
        """A harness that cannot settle must fail loudly, not hang."""
        async def scenario():
            harness = ChaosHarness(ChaosConfig(peers=2))
            try:
                await harness.start()
                # A timer loop that re-arms faster than settle drains it.
                clock = harness.clock

                async def rearm():
                    while True:
                        await clock.sleep(1e-9)

                task = asyncio.ensure_future(rearm())
                clock.firing_limit = 1000
                await harness.settle()
                task.cancel()
            finally:
                clock.firing_limit = 2_000_000
                await harness.teardown()
            return harness

        harness = asyncio.run(scenario())
        assert any("never quiesced" in v for v in harness.violations)
        assert harness.flight_dump  # evidence captured, not a bare hang


# ----------------------------------------------------------------------
# Swarm rounds


class TestSwarmRound:
    def test_small_swarm_full_round(self):
        """Join, broadcast, 10% churn, survivors re-decode — at 150."""
        report = asyncio.run(run_swarm_round(SwarmConfig(
            peers=150, k=16, join_batch=64, seed=0,
        )))
        assert report.ok, report.violations[:5]
        assert report.joined == 150
        assert report.killed == 15
        assert report.converged and report.survivors_decoded
        assert report.server_metrics  # obs registry was read

    def test_seed_changes_churn_victims(self):
        async def run(seed):
            harness = SwarmHarness(SwarmConfig(peers=40, k=8, seed=seed))
            try:
                await harness.join_all()
                return harness.churn()
            finally:
                await harness.teardown()

        assert asyncio.run(run(0)) != asyncio.run(run(1))

    def test_summary_mentions_scale(self):
        report = asyncio.run(run_swarm_round(SwarmConfig(
            peers=60, k=8, seed=3,
        )))
        assert "n=60" in report.summary()
        assert report.wall_total > 0
        assert report.virtual_elapsed > 0

    @pytest.mark.slow
    def test_10k_acceptance_round_under_budget(self):
        """The PR-9 headline: 10k peers, full round, < 60s wall."""
        report = asyncio.run(run_swarm_round(SwarmConfig(
            peers=10_000, k=64, join_batch=512, seed=0,
        )))
        assert report.ok, report.violations[:5]
        assert report.joined == 10_000
        assert report.killed == 1_000
        assert report.wall_total < 60.0, report.summary()


# ----------------------------------------------------------------------
# Soak runner


class TestSoak:
    def test_config_validation(self):
        with pytest.raises(ValueError, match="trace shape"):
            SoakConfig(trace="tsunami")
        with pytest.raises(ValueError, match="positive"):
            SoakConfig(peers=0)
        with pytest.raises(ValueError, match="burst_fraction"):
            SoakConfig(burst_fraction=1.5)

    def test_epoch_arithmetic(self):
        config = SoakConfig(peers=10, hours=0.5, epoch=60.0)
        assert config.epochs == 30
        assert config.population_cap == 20
        assert SoakConfig(peers=10, max_peers=64).population_cap == 64

    def test_steady_soak_smoke(self):
        report = asyncio.run(run_soak(SoakConfig(
            peers=64, hours=0.05, epoch=30.0, trace="steady", seed=0,
        )))
        assert report.ok, report.violations[:5]
        assert report.epochs_run == report.epochs_total == 6
        assert report.final_converged
        # The applied history is a well-formed, replayable trace.
        counts = report.history.counts()
        assert counts["join"] == report.joins
        assert counts["fail"] == report.fails
        assert counts["leave"] == report.leaves

    def test_correlated_soak_mass_failure_absorbed(self):
        report = asyncio.run(run_soak(SoakConfig(
            peers=64, hours=0.05, epoch=30.0, trace="correlated",
            seed=1, burst_fraction=0.25,
        )))
        assert report.ok, report.violations[:5]
        # The burst epoch alone crashes ~a quarter of the swarm.
        assert report.fails >= int(0.2 * 64)

    def test_population_cap_clips_and_counts(self):
        report = asyncio.run(run_soak(SoakConfig(
            peers=32, hours=0.05, epoch=30.0, trace="flash",
            peak_rate=60.0, max_peers=40, seed=0,
        )))
        assert report.clipped_joins > 0
        assert report.peers_final <= 40

    @pytest.mark.slow
    def test_nightly_scale_soak(self):
        """1k peers, half a virtual hour of steady churn."""
        report = asyncio.run(run_soak(SoakConfig(
            peers=1000, hours=0.5, epoch=60.0, trace="steady", seed=0,
        )))
        assert report.ok, report.violations[:5]
