"""Property-based tests: random operation sequences keep M consistent."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SERVER, ThreadMatrix, UniformKeys
from repro.core.keys import AppendKeys


operations = st.lists(
    st.tuples(
        st.sampled_from(["join", "leave", "drop", "add"]),
        st.integers(min_value=0, max_value=2**31 - 1),
    ),
    min_size=1,
    max_size=60,
)


def apply_ops(matrix: ThreadMatrix, ops, rng, d=2):
    """Apply a random op sequence, skipping inapplicable ops."""
    next_id = 0
    for op, raw in ops:
        present = matrix.node_ids
        if op == "join":
            matrix.join(next_id, d, rng)
            next_id += 1
        elif op == "leave" and present:
            matrix.leave(present[raw % len(present)])
        elif op == "drop" and present:
            victim = present[raw % len(present)]
            if matrix.row(victim).degree > 1:
                matrix.drop_thread(victim, rng=rng)
        elif op == "add" and present:
            victim = present[raw % len(present)]
            if matrix.row(victim).degree < matrix.k:
                matrix.add_thread(victim, rng=rng)
    return matrix


@settings(max_examples=50, deadline=None)
@given(ops=operations, seed=st.integers(min_value=0, max_value=2**31 - 1),
       uniform=st.booleans())
def test_invariants_hold_under_any_op_sequence(ops, seed, uniform):
    rng = np.random.default_rng(seed)
    allocator = UniformKeys(rng) if uniform else AppendKeys()
    matrix = ThreadMatrix(k=6, allocator=allocator)
    apply_ops(matrix, ops, rng)
    matrix.check_invariants()


@settings(max_examples=50, deadline=None)
@given(ops=operations, seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_parent_child_are_mutually_consistent(ops, seed):
    rng = np.random.default_rng(seed)
    matrix = apply_ops(ThreadMatrix(k=6), ops, rng)
    for node_id in matrix.node_ids:
        for column, parent in matrix.parents_of(node_id).items():
            if parent != SERVER:
                assert matrix.child_in_column(parent, column) == node_id
        for column, child in matrix.children_of(node_id).items():
            if child is not None:
                assert matrix.parent_in_column(child, column) == node_id


@settings(max_examples=50, deadline=None)
@given(ops=operations, seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_edge_counts_match_column_occupancy(ops, seed):
    rng = np.random.default_rng(seed)
    matrix = apply_ops(ThreadMatrix(k=6), ops, rng)
    # every occupant of a column contributes exactly one incoming segment
    expected = sum(len(matrix.column_chain(c)) for c in range(matrix.k))
    assert sum(matrix.edge_multiplicities().values()) == expected


@settings(max_examples=50, deadline=None)
@given(ops=operations, seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_hanging_threads_always_number_k(ops, seed):
    """Invariant from §3: 'at all times there are k threads freely hanging'."""
    rng = np.random.default_rng(seed)
    matrix = apply_ops(ThreadMatrix(k=6), ops, rng)
    assert len(matrix.hanging_owners()) == matrix.k


@settings(max_examples=40, deadline=None)
@given(ops=operations, seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_dense_view_consistent(ops, seed):
    rng = np.random.default_rng(seed)
    matrix = apply_ops(ThreadMatrix(k=6), ops, rng)
    dense = matrix.to_dense()
    assert dense.shape == (len(matrix), matrix.k)
    order = matrix.node_ids
    for i, node_id in enumerate(order):
        assert set(np.nonzero(dense[i])[0]) == matrix.columns_of(node_id)
