"""Unit tests for churn trace record/replay."""

import pytest

from repro.core import OverlayNetwork
from repro.workloads import ChurnTrace, TraceEvent, TraceRecorder, replay


@pytest.fixture
def recorded():
    """An overlay driven through a recorder, plus the recorder."""
    net = OverlayNetwork(k=12, d=2, seed=21)
    recorder = TraceRecorder(net)
    ids = [recorder.join() for _ in range(15)]
    recorder.fail(ids[3])
    recorder.repair(ids[3])
    recorder.leave(ids[7])
    recorder.join(d=4)
    return net, recorder


class TestRecorder:
    def test_event_counts(self, recorded):
        _, recorder = recorded
        counts = recorder.trace().counts()
        assert counts == {"join": 16, "leave": 1, "fail": 1, "repair": 1}

    def test_forwarding_matches_overlay(self, recorded):
        net, _ = recorded
        assert net.population == 14  # 16 joins - 1 repair-removal - 1 leave
        net.matrix.check_invariants()

    def test_degree_recorded(self, recorded):
        _, recorder = recorded
        last_join = [e for e in recorder.trace().events if e.kind == "join"][-1]
        assert last_join.degree == 4


class TestSerialisation:
    def test_json_roundtrip(self, recorded):
        _, recorder = recorded
        trace = recorder.trace()
        parsed = ChurnTrace.from_json(trace.to_json())
        assert parsed.events == trace.events

    def test_save_load(self, recorded, tmp_path):
        _, recorder = recorded
        trace = recorder.trace()
        path = tmp_path / "trace.json"
        trace.save(path)
        assert ChurnTrace.load(path).events == trace.events

    def test_bad_version_rejected(self):
        with pytest.raises(ValueError):
            ChurnTrace.from_json('{"version": 9, "events": []}')

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            TraceEvent(time=0.0, kind="explode", node_id=1)


class TestReplay:
    def test_replay_reproduces_population(self, recorded):
        net, recorder = recorded
        trace = recorder.trace()
        fresh = OverlayNetwork(k=12, d=2, seed=99)
        mapping = replay(trace, fresh)
        assert fresh.population == net.population
        assert len(mapping) == 16
        fresh.matrix.check_invariants()

    def test_replay_identical_seed_identical_matrix(self, recorded):
        net, recorder = recorded
        fresh = OverlayNetwork(k=12, d=2, seed=21)  # same seed as recording
        replay(recorder.trace(), fresh)
        assert fresh.matrix.to_dense().tolist() == net.matrix.to_dense().tolist()

    def test_replay_onto_different_geometry(self, recorded):
        """Traces replay onto overlays with different k (the comparison
        use-case); only the membership schedule is shared."""
        _, recorder = recorded
        other = OverlayNetwork(k=20, d=2, seed=5)
        replay(recorder.trace(), other)
        other.matrix.check_invariants()

    def test_corrupt_trace_detected(self):
        trace = ChurnTrace(events=[
            TraceEvent(time=0.0, kind="leave", node_id=7),
        ])
        with pytest.raises(ValueError):
            replay(trace, OverlayNetwork(k=8, d=2, seed=1))

    def test_heterogeneous_degree_replayed(self, recorded):
        _, recorder = recorded
        fresh = OverlayNetwork(k=12, d=2, seed=50)
        mapping = replay(recorder.trace(), fresh)
        degrees = {fresh.matrix.row(n).degree for n in fresh.matrix.node_ids}
        assert 4 in degrees  # the d=4 join came through
