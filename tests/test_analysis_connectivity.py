"""Unit tests for connectivity measurement, with a networkx oracle."""

import networkx as nx
import pytest

from repro.analysis import (
    TupleConnectivitySolver,
    all_node_connectivities,
    node_connectivity,
)
from repro.core import SERVER, ThreadMatrix, build_overlay_graph


@pytest.fixture
def matrix(rng):
    m = ThreadMatrix(k=6)
    m.join(0, 2, rng, columns=[0, 1])
    m.join(1, 2, rng, columns=[1, 2])
    m.join(2, 2, rng, columns=[0, 2])
    m.join(3, 2, rng, columns=[3, 4])
    return m


def nx_connectivity(matrix, node_id, failed=frozenset()):
    graph = build_overlay_graph(matrix, failed)
    if node_id not in graph.nodes:
        return 0
    g = nx.DiGraph()
    for u, targets in graph.succ.items():
        for v, mult in targets.items():
            g.add_edge(u, v, capacity=mult)
    if not g.has_node(node_id) or not g.has_node(SERVER):
        return 0
    return int(nx.maximum_flow_value(g, SERVER, node_id))


class TestNodeConnectivity:
    def test_healthy_network_full_d(self, matrix):
        for node in (0, 1, 2, 3):
            assert node_connectivity(matrix, node) == 2

    def test_failed_node_zero(self, matrix):
        assert node_connectivity(matrix, 1, failed={1}) == 0

    def test_child_of_failed_loses_one(self, matrix):
        # node 2's parents: column 0 -> node 0, column 2 -> node 1
        assert node_connectivity(matrix, 2, failed={1}) == 1
        assert node_connectivity(matrix, 2, failed={0, 1}) == 0

    def test_independent_node_unaffected(self, matrix):
        assert node_connectivity(matrix, 3, failed={0, 1, 2}) == 2

    def test_matches_networkx(self, matrix):
        for failed in (frozenset(), {0}, {1}, {0, 1}):
            for node in (0, 1, 2, 3):
                if node in failed:
                    continue
                assert node_connectivity(matrix, node, failed) == nx_connectivity(
                    matrix, node, failed
                )

    def test_bulk_matches_single(self, matrix):
        bulk = all_node_connectivities(matrix, failed={0})
        for node in (1, 2, 3):
            assert bulk[node] == node_connectivity(matrix, node, failed={0})
        assert bulk[0] == 0

    def test_bulk_on_larger_net(self, small_net):
        small_net.fail(1)
        small_net.fail(4)
        bulk = all_node_connectivities(small_net.matrix, small_net.failed)
        assert all(0 <= c <= 3 for c in bulk.values())


class TestTupleConnectivity:
    def test_full_tuple_healthy(self, matrix):
        solver = TupleConnectivitySolver(matrix)
        assert solver.connectivity([0, 1]) == 2
        assert solver.defect([0, 1]) == 0

    def test_tuple_with_dead_hanging_thread(self, matrix):
        # column 0's hanging owner is node 2; fail it
        solver = TupleConnectivitySolver(matrix, failed={2})
        assert solver.connectivity([0, 3]) == 1
        assert solver.defect([0, 3]) == 1

    def test_all_dead_tuple(self, matrix):
        solver = TupleConnectivitySolver(matrix, failed={2})
        # columns 0 and 2 both hang off node 2
        assert solver.connectivity([0, 2]) == 0
        assert solver.defect([0, 2]) == 2

    def test_repeated_queries_are_stable(self, matrix):
        solver = TupleConnectivitySolver(matrix, failed={1})
        first = [solver.connectivity([0, 2]) for _ in range(5)]
        assert len(set(first)) == 1

    def test_shared_owner_tuple(self, rng):
        """Two chosen threads hanging off the same node: capacity adds."""
        m = ThreadMatrix(k=4)
        m.join(0, 2, rng, columns=[0, 1])
        solver = TupleConnectivitySolver(m)
        # both hanging threads 0 and 1 belong to node 0, which has conn 2
        assert solver.connectivity([0, 1]) == 2

    def test_single_thread_bottleneck(self, rng):
        """A chain shares one thread: tuple through it caps at chain conn."""
        m = ThreadMatrix(k=4)
        m.join(0, 2, rng, columns=[0, 1])
        m.join(1, 2, rng, columns=[0, 1])
        solver = TupleConnectivitySolver(m, failed={0})
        # node 1's threads both ran through failed node 0
        assert solver.connectivity([0, 1]) == 0

    def test_server_hanging_threads_always_live(self, rng):
        m = ThreadMatrix(k=5)
        m.join(0, 2, rng, columns=[0, 1])
        solver = TupleConnectivitySolver(m, failed={0})
        # columns 2,3 hang straight from the rod
        assert solver.connectivity([2, 3]) == 2
