"""Unit tests for the packet wire format."""

import numpy as np
import pytest

from repro.coding import GenerationParams, SourceEncoder
from repro.coding.wire import (
    WireFormatError,
    decode_packet,
    encode_packet,
    frame_size,
)


@pytest.fixture
def packet(rng):
    params = GenerationParams(generation_size=8, payload_size=64)
    content = bytes(rng.integers(0, 256, size=512, dtype=np.uint8))
    return SourceEncoder(content, params, rng).emit(0)


class TestRoundtrip:
    def test_fields_preserved(self, packet):
        packet.origin = 42
        decoded = decode_packet(encode_packet(packet))
        assert decoded.generation == packet.generation
        assert decoded.origin == 42
        assert np.array_equal(decoded.coefficients, packet.coefficients)
        assert np.array_equal(decoded.payload, packet.payload)

    def test_server_origin_negative(self, packet):
        packet.origin = -1
        assert decode_packet(encode_packet(packet)).origin == -1

    def test_frame_size_matches(self, packet):
        frame = encode_packet(packet)
        assert len(frame) == frame_size(packet.generation_size,
                                        packet.payload_size)

    def test_decoded_packet_still_decodes(self, rng):
        """Wire roundtrip must not disturb decodability."""
        from repro.coding import Decoder

        params = GenerationParams(generation_size=6, payload_size=32)
        content = bytes(rng.integers(0, 256, size=192, dtype=np.uint8))
        encoder = SourceEncoder(content, params, rng)
        decoder = Decoder(params, encoder.generation_count)
        while not decoder.is_complete:
            decoder.push(decode_packet(encode_packet(encoder.emit())))
        assert decoder.recover(len(content)) == content

    def test_systematic_flag(self, rng):
        params = GenerationParams(generation_size=4, payload_size=8)
        content = bytes(32)
        encoder = SourceEncoder(content, params, rng, systematic_first=True)
        frame = encode_packet(encoder.emit(0))
        assert frame[3] & 0x01  # flags byte carries the systematic hint


class TestErrors:
    def test_truncated_header(self):
        with pytest.raises(WireFormatError):
            decode_packet(b"\x00\x01")

    def test_bad_magic(self, packet):
        frame = bytearray(encode_packet(packet))
        frame[0] ^= 0xFF
        with pytest.raises(WireFormatError):
            decode_packet(bytes(frame))

    def test_bad_version(self, packet):
        frame = bytearray(encode_packet(packet))
        frame[2] = 99
        with pytest.raises(WireFormatError):
            decode_packet(bytes(frame))

    def test_length_mismatch(self, packet):
        frame = encode_packet(packet)
        with pytest.raises(WireFormatError):
            decode_packet(frame[:-1])
        with pytest.raises(WireFormatError):
            decode_packet(frame + b"\x00")
