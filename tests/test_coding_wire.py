"""Unit tests for the packet wire format."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding import CodedPacket, GenerationParams, SourceEncoder
from repro.coding.wire import (
    WireFormatError,
    decode_packet,
    encode_packet,
    frame_size,
    read_frame,
)


@pytest.fixture
def packet(rng):
    params = GenerationParams(generation_size=8, payload_size=64)
    content = bytes(rng.integers(0, 256, size=512, dtype=np.uint8))
    return SourceEncoder(content, params, rng).emit(0)


class TestRoundtrip:
    def test_fields_preserved(self, packet):
        packet.origin = 42
        decoded = decode_packet(encode_packet(packet))
        assert decoded.generation == packet.generation
        assert decoded.origin == 42
        assert np.array_equal(decoded.coefficients, packet.coefficients)
        assert np.array_equal(decoded.payload, packet.payload)

    def test_server_origin_negative(self, packet):
        packet.origin = -1
        assert decode_packet(encode_packet(packet)).origin == -1

    def test_frame_size_matches(self, packet):
        frame = encode_packet(packet)
        assert len(frame) == frame_size(packet.generation_size,
                                        packet.payload_size)

    def test_decoded_packet_still_decodes(self, rng):
        """Wire roundtrip must not disturb decodability."""
        from repro.coding import Decoder

        params = GenerationParams(generation_size=6, payload_size=32)
        content = bytes(rng.integers(0, 256, size=192, dtype=np.uint8))
        encoder = SourceEncoder(content, params, rng)
        decoder = Decoder(params, encoder.generation_count)
        while not decoder.is_complete:
            decoder.push(decode_packet(encode_packet(encoder.emit())))
        assert decoder.recover(len(content)) == content

    def test_systematic_flag(self, rng):
        params = GenerationParams(generation_size=4, payload_size=8)
        content = bytes(32)
        encoder = SourceEncoder(content, params, rng, systematic_first=True)
        frame = encode_packet(encoder.emit(0))
        assert frame[3] & 0x01  # flags byte carries the systematic hint


def _packets_equal(a, b):
    return (a.generation == b.generation and a.origin == b.origin
            and np.array_equal(a.coefficients, b.coefficients)
            and np.array_equal(a.payload, b.payload))


_packet_strategy = st.builds(
    CodedPacket,
    generation=st.integers(min_value=0, max_value=2**32 - 1),
    coefficients=st.binary(min_size=1, max_size=64).map(
        lambda b: np.frombuffer(b, dtype=np.uint8).copy()
    ),
    payload=st.binary(min_size=0, max_size=128).map(
        lambda b: np.frombuffer(b, dtype=np.uint8).copy()
    ),
    origin=st.integers(min_value=-(2**31), max_value=2**31 - 1),
)


class TestVersions:
    """v2 adds a CRC32 trailer; v1 frames still decode."""

    def test_v1_frame_decodes_without_trailer(self, packet):
        frame = encode_packet(packet, version=1)
        assert len(frame) == frame_size(packet.generation_size,
                                        packet.payload_size, version=1)
        decoded = decode_packet(frame)
        assert _packets_equal(decoded, packet)

    def test_v2_is_v1_plus_four_trailer_bytes(self, packet):
        assert len(encode_packet(packet)) == len(encode_packet(packet, version=1)) + 4

    def test_unknown_encode_version_rejected(self, packet):
        with pytest.raises(WireFormatError):
            encode_packet(packet, version=3)
        with pytest.raises(WireFormatError):
            frame_size(4, 4, version=0)

    def test_corrupted_payload_fails_crc(self, packet):
        frame = bytearray(encode_packet(packet))
        frame[20] ^= 0x40  # inside the coefficient/payload region
        with pytest.raises(WireFormatError, match="CRC"):
            decode_packet(bytes(frame))

    def test_corrupted_trailer_fails_crc(self, packet):
        frame = bytearray(encode_packet(packet))
        frame[-1] ^= 0x01
        with pytest.raises(WireFormatError, match="CRC"):
            decode_packet(bytes(frame))

    def test_v1_corruption_is_silent(self, packet):
        """The legacy format cannot detect body corruption — the reason
        v2 exists."""
        frame = bytearray(encode_packet(packet, version=1))
        frame[-1] ^= 0x01
        decoded = decode_packet(bytes(frame))  # parses fine, bad bytes
        assert not np.array_equal(decoded.payload, packet.payload)

    @settings(max_examples=50, deadline=None)
    @given(packet=_packet_strategy, version=st.sampled_from([1, 2]))
    def test_roundtrip_both_versions(self, packet, version):
        assert _packets_equal(
            decode_packet(encode_packet(packet, version=version)), packet
        )


class TestEdgeGeometry:
    def test_empty_payload(self):
        packet = CodedPacket(generation=0,
                             coefficients=np.array([7], dtype=np.uint8),
                             payload=np.zeros(0, dtype=np.uint8), origin=-1)
        decoded = decode_packet(encode_packet(packet))
        assert decoded.payload_size == 0
        assert decoded.origin == -1

    def test_generation_size_at_uint16_boundary(self):
        packet = CodedPacket(
            generation=1,
            coefficients=np.ones(0xFFFF, dtype=np.uint8),
            payload=np.zeros(3, dtype=np.uint8),
        )
        decoded = decode_packet(encode_packet(packet))
        assert decoded.generation_size == 0xFFFF
        assert np.array_equal(decoded.coefficients, packet.coefficients)

    def test_server_and_extreme_origins(self):
        for origin in (-1, -(2**31), 2**31 - 1):
            packet = CodedPacket(generation=0,
                                 coefficients=np.array([1], dtype=np.uint8),
                                 payload=np.array([9], dtype=np.uint8),
                                 origin=origin)
            assert decode_packet(encode_packet(packet)).origin == origin


class TestReadFrame:
    """Streaming decode: a socket reader never sees aligned frames."""

    def test_empty_buffer(self):
        packet, rest = read_frame(b"")
        assert packet is None and rest == b""

    def test_partial_header(self, packet):
        prefix = encode_packet(packet)[:10]
        parsed, rest = read_frame(prefix)
        assert parsed is None and rest == prefix

    def test_partial_body(self, packet):
        frame = encode_packet(packet)
        parsed, rest = read_frame(frame[:-1])
        assert parsed is None and rest == frame[:-1]

    def test_exact_frame(self, packet):
        parsed, rest = read_frame(encode_packet(packet))
        assert _packets_equal(parsed, packet) and rest == b""

    def test_two_frames_back_to_back(self, packet):
        buffer = encode_packet(packet) + encode_packet(packet, version=1)
        first, rest = read_frame(buffer)
        second, rest = read_frame(rest)
        assert _packets_equal(first, packet)
        assert _packets_equal(second, packet)
        assert rest == b""

    def test_frame_plus_partial(self, packet):
        tail = encode_packet(packet)[:7]
        parsed, rest = read_frame(encode_packet(packet) + tail)
        assert _packets_equal(parsed, packet) and rest == tail

    def test_bad_magic_raises(self, packet):
        frame = bytearray(encode_packet(packet))
        frame[0] ^= 0xFF
        with pytest.raises(WireFormatError):
            read_frame(bytes(frame))

    @settings(max_examples=50, deadline=None)
    @given(packet=_packet_strategy, data=st.data())
    def test_any_split_point_reassembles(self, packet, data):
        """Feeding a frame in two arbitrary chunks yields the packet."""
        frame = encode_packet(packet)
        cut = data.draw(st.integers(min_value=0, max_value=len(frame)))
        parsed, buffer = read_frame(frame[:cut])
        if parsed is not None:  # cut == len(frame)
            assert _packets_equal(parsed, packet)
            return
        parsed, rest = read_frame(bytes(buffer) + frame[cut:])
        assert _packets_equal(parsed, packet)
        assert rest == b""


class TestErrors:
    def test_truncated_header(self):
        with pytest.raises(WireFormatError):
            decode_packet(b"\x00\x01")

    def test_bad_magic(self, packet):
        frame = bytearray(encode_packet(packet))
        frame[0] ^= 0xFF
        with pytest.raises(WireFormatError):
            decode_packet(bytes(frame))

    def test_bad_version(self, packet):
        frame = bytearray(encode_packet(packet))
        frame[2] = 99
        with pytest.raises(WireFormatError):
            decode_packet(bytes(frame))

    def test_length_mismatch(self, packet):
        frame = encode_packet(packet)
        with pytest.raises(WireFormatError):
            decode_packet(frame[:-1])
        with pytest.raises(WireFormatError):
            decode_packet(frame + b"\x00")
