"""Unit tests for scalar/elementwise GF(2^8) arithmetic."""

import numpy as np
import pytest

from repro.gf import field
from repro.gf.tables import EXP, FIELD_SIZE, GENERATOR, INV, LOG, MUL, PRIMITIVE_POLY


def slow_mul(a: int, b: int) -> int:
    """Bit-by-bit carry-less reference multiplication mod the polynomial."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        b >>= 1
        a <<= 1
        if a & 0x100:
            a ^= PRIMITIVE_POLY
    return result


class TestTables:
    def test_exp_log_roundtrip(self):
        for value in range(1, FIELD_SIZE):
            assert EXP[LOG[value]] == value

    def test_exp_is_periodic(self):
        assert EXP[0] == 1
        assert EXP[FIELD_SIZE - 1] == 1  # g^255 == 1

    def test_generator_is_primitive(self):
        seen = set()
        value = 1
        for _ in range(FIELD_SIZE - 1):
            seen.add(value)
            value = slow_mul(value, GENERATOR)
        assert len(seen) == FIELD_SIZE - 1

    def test_mul_table_matches_reference(self):
        rng = np.random.default_rng(1)
        for _ in range(500):
            a = int(rng.integers(0, FIELD_SIZE))
            b = int(rng.integers(0, FIELD_SIZE))
            assert MUL[a, b] == slow_mul(a, b)

    def test_mul_zero_rows(self):
        assert not MUL[0, :].any()
        assert not MUL[:, 0].any()

    def test_inv_table(self):
        assert INV[0] == 0
        for value in range(1, FIELD_SIZE):
            assert MUL[value, INV[value]] == 1


class TestScalarOps:
    def test_add_is_xor(self):
        assert field.add(0b1010, 0b0110) == 0b1100

    def test_sub_equals_add(self):
        assert field.sub(17, 42) == field.add(17, 42)

    def test_mul_identity(self):
        for value in (0, 1, 7, 255):
            assert field.mul(value, 1) == value

    def test_mul_commutative_sample(self):
        assert field.mul(200, 13) == field.mul(13, 200)

    def test_div_roundtrip(self):
        for a in (1, 5, 91, 254):
            for b in (1, 3, 77, 255):
                assert field.mul(field.div(a, b), b) == a

    def test_div_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            field.div(5, 0)

    def test_inv_of_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            field.inv(0)

    def test_power_basics(self):
        assert field.power(0, 0) == 1
        assert field.power(0, 3) == 0
        assert field.power(5, 0) == 1
        assert field.power(5, 1) == 5

    def test_power_matches_repeated_mul(self):
        value = 1
        for exponent in range(1, 20):
            value = field.mul(value, 9)
            assert field.power(9, exponent) == value

    def test_power_negative_is_inverse(self):
        for a in (1, 2, 100, 255):
            assert field.mul(field.power(a, -1), a) == 1

    def test_power_zero_negative_raises(self):
        with pytest.raises(ZeroDivisionError):
            field.power(0, -2)


class TestVectorOps:
    def test_add_arrays(self):
        a = np.array([1, 2, 3], dtype=np.uint8)
        b = np.array([3, 2, 1], dtype=np.uint8)
        assert np.array_equal(field.add(a, b), np.array([2, 0, 2], dtype=np.uint8))

    def test_mul_arrays_elementwise(self):
        a = np.array([2, 3], dtype=np.uint8)
        b = np.array([3, 7], dtype=np.uint8)
        expected = np.array([slow_mul(2, 3), slow_mul(3, 7)], dtype=np.uint8)
        assert np.array_equal(field.mul(a, b), expected)

    def test_inv_array_with_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            field.inv(np.array([1, 0], dtype=np.uint8))

    def test_scale_row_zero(self):
        row = np.array([5, 6], dtype=np.uint8)
        assert not field.scale_row(row, 0).any()

    def test_scale_row_one_copies(self):
        row = np.array([5, 6], dtype=np.uint8)
        out = field.scale_row(row, 1)
        assert np.array_equal(out, row)
        out[0] = 99
        assert row[0] == 5  # a copy, not a view

    def test_scale_row_general(self):
        row = np.array([1, 2, 255], dtype=np.uint8)
        out = field.scale_row(row, 7)
        expected = np.array([slow_mul(1, 7), slow_mul(2, 7), slow_mul(255, 7)],
                            dtype=np.uint8)
        assert np.array_equal(out, expected)

    def test_addmul_row_zero_scalar_noop(self):
        dest = np.array([1, 2], dtype=np.uint8)
        field.addmul_row(dest, np.array([9, 9], dtype=np.uint8), 0)
        assert np.array_equal(dest, np.array([1, 2], dtype=np.uint8))

    def test_addmul_row_one_is_xor(self):
        dest = np.array([1, 2], dtype=np.uint8)
        field.addmul_row(dest, np.array([3, 3], dtype=np.uint8), 1)
        assert np.array_equal(dest, np.array([2, 1], dtype=np.uint8))

    def test_addmul_row_general(self):
        dest = np.array([10, 20], dtype=np.uint8)
        src = np.array([3, 4], dtype=np.uint8)
        expected = dest ^ np.array([slow_mul(3, 5), slow_mul(4, 5)], dtype=np.uint8)
        field.addmul_row(dest, src, 5)
        assert np.array_equal(dest, expected)

    def test_validate_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            field.validate(np.array([256], dtype=np.int16))
        with pytest.raises(ValueError):
            field.validate(np.array([-1], dtype=np.int16))
        field.validate(np.array([0, 255], dtype=np.int16))  # no raise
