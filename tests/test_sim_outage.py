"""Unit tests for the §2 ergodic outage model."""

import numpy as np
import pytest

from repro.coding import GenerationParams
from repro.core import OverlayNetwork
from repro.sim import BroadcastSimulation, OutageModel


class TestOutageModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            OutageModel(onset=1.0)
        with pytest.raises(ValueError):
            OutageModel(onset=0.1, recovery=0.0)

    def test_stationary_fraction(self):
        model = OutageModel(onset=0.1, recovery=0.4)
        assert model.stationary_outage_fraction == pytest.approx(0.2)
        assert OutageModel(onset=0.0).stationary_outage_fraction == 0.0

    def test_mean_duration(self):
        assert OutageModel(onset=0.1, recovery=0.25).mean_duration == 4.0

    def test_advance_statistics(self, rng):
        model = OutageModel(onset=0.05, recovery=0.2)
        population = list(range(200))
        outaged: set[int] = set()
        samples = []
        for _ in range(400):
            model.advance(outaged, population, rng)
            samples.append(len(outaged))
        mean_fraction = np.mean(samples[100:]) / 200
        assert mean_fraction == pytest.approx(
            model.stationary_outage_fraction, abs=0.06
        )

    def test_zero_onset_noop(self, rng):
        model = OutageModel(onset=0.0)
        outaged: set[int] = set()
        model.advance(outaged, range(10), rng)
        assert outaged == set()


class TestOutagesInBroadcast:
    def _run(self, outage=None, seed=7):
        net = OverlayNetwork(k=12, d=3, seed=seed)
        net.grow(25)
        rng = np.random.default_rng(seed + 1)
        content = bytes(rng.integers(0, 256, size=1500, dtype=np.uint8))
        sim = BroadcastSimulation(
            net, content, GenerationParams(8, 75), seed=seed + 2, outage=outage
        )
        return sim

    def test_outages_slow_but_do_not_corrupt(self):
        clean = self._run()
        flaky = self._run(outage=OutageModel(onset=0.05, recovery=0.3))
        clean_report = clean.run_until_complete(max_slots=1500)
        flaky_report = flaky.run_until_complete(max_slots=1500)
        assert flaky_report.completion_fraction == 1.0
        assert all(n.decoded_ok for n in flaky_report.nodes)
        assert max(flaky_report.completion_slots()) >= max(
            clean_report.completion_slots()
        )

    def test_outaged_nodes_do_not_receive(self):
        sim = self._run(outage=OutageModel(onset=0.9, recovery=0.01))
        sim.run(5)
        # with near-total outage, almost nothing gets delivered
        delivered = sum(sim._received.values())
        clean = self._run()
        clean.run(5)
        assert delivered < sum(clean._received.values())

    def test_no_repairs_triggered_by_outages(self):
        """Ergodic failures never touch the matrix: no rows removed."""
        sim = self._run(outage=OutageModel(onset=0.1, recovery=0.2))
        before = sim.net.population
        sim.run(40)
        assert sim.net.population == before
        assert sim.net.failed == frozenset()

    def test_outage_state_recovers(self):
        sim = self._run(outage=OutageModel(onset=0.2, recovery=0.9))
        sim.run(60)
        # high recovery: the outaged set stays small
        assert len(sim.outaged) <= 10


class TestMetricsExport:
    def test_csv_roundtrip(self, tmp_path):
        from repro.metrics import save_table, to_csv

        headers = ["a", "b"]
        rows = [[1, 2.5], ["x", None]]
        text = to_csv(headers, rows)
        assert text.splitlines()[0] == "a,b"
        assert text.splitlines()[2] == "x,"
        path = tmp_path / "t.csv"
        save_table(path, headers, rows)
        assert path.read_text() == text

    def test_json_structure(self, tmp_path):
        import json

        from repro.metrics import save_table

        path = tmp_path / "t.json"
        save_table(path, ["n", "v"], [[1, 0.5], [2, 0.7]])
        data = json.loads(path.read_text())
        assert data == [{"n": 1, "v": 0.5}, {"n": 2, "v": 0.7}]

    def test_bad_suffix_raises(self, tmp_path):
        from repro.metrics import save_table

        with pytest.raises(ValueError):
            save_table(tmp_path / "t.xlsx", ["a"], [[1]])

    def test_width_mismatch_raises(self):
        from repro.metrics import to_csv, to_json

        with pytest.raises(ValueError):
            to_csv(["a"], [[1, 2]])
        with pytest.raises(ValueError):
            to_json(["a"], [[1, 2]])


class TestProtocolInsertMode:
    def test_uniform_mode_deployment(self):
        from repro.protocol_sim import ProtocolConfig, ProtocolSimulation

        sim = ProtocolSimulation(
            ProtocolConfig(k=10, d=2, seed=4, insert_mode="uniform")
        )
        sim.grow(25, settle=4.0)
        assert sim.core.insert_mode == "uniform"
        assert sim.consistency_check()
