"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import SimulationError, Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(3.0, lambda s: log.append(("c", s.now)))
        sim.schedule(1.0, lambda s: log.append(("a", s.now)))
        sim.schedule(2.0, lambda s: log.append(("b", s.now)))
        sim.run()
        assert log == [("a", 1.0), ("b", 2.0), ("c", 3.0)]

    def test_same_time_fires_in_schedule_order(self):
        sim = Simulator()
        log = []
        for name in "abc":
            sim.schedule(1.0, lambda s, n=name: log.append(n))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_priority_breaks_time_ties(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda s: log.append("low"), priority=5)
        sim.schedule(1.0, lambda s: log.append("high"), priority=1)
        sim.run()
        assert log == ["high", "low"]

    def test_schedule_in_past_raises(self):
        sim = Simulator()
        sim.schedule(5.0, lambda s: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule(1.0, lambda s: None)

    def test_schedule_after(self):
        sim = Simulator()
        times = []
        sim.schedule(2.0, lambda s: s.schedule_after(3.0, lambda s2: times.append(s2.now)))
        sim.run()
        assert times == [5.0]

    def test_negative_delay_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_after(-1.0, lambda s: None)


class TestRunControl:
    def test_run_until_is_inclusive(self):
        sim = Simulator()
        log = []
        sim.schedule(5.0, lambda s: log.append(s.now))
        sim.schedule(5.1, lambda s: log.append(s.now))
        sim.run(until=5.0)
        assert log == [5.0]
        assert sim.now == 5.0
        assert sim.pending == 1

    def test_run_until_advances_clock_when_idle(self):
        sim = Simulator()
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_cancelled_events_skipped(self):
        sim = Simulator()
        log = []
        event = sim.schedule(1.0, lambda s: log.append("x"))
        event.cancel()
        sim.run()
        assert log == []

    def test_step(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda s: log.append(1))
        sim.schedule(2.0, lambda s: log.append(2))
        assert sim.step()
        assert log == [1]
        assert sim.step()
        assert not sim.step()

    def test_event_budget_guards_runaway(self):
        sim = Simulator()

        def rearm(s):
            s.schedule_after(0.0, rearm)

        sim.schedule(0.0, rearm)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_processed_counter(self):
        sim = Simulator()
        for t in range(5):
            sim.schedule(float(t), lambda s: None)
        sim.run()
        assert sim.processed == 5


class TestPeriodic:
    def test_every_fires_repeatedly(self):
        sim = Simulator()
        ticks = []
        sim.every(2.0, lambda s: ticks.append(s.now))
        sim.run(until=9.0)
        assert ticks == [2.0, 4.0, 6.0, 8.0]

    def test_every_with_start(self):
        sim = Simulator()
        ticks = []
        sim.every(5.0, lambda s: ticks.append(s.now), start=1.0)
        sim.run(until=12.0)
        assert ticks == [1.0, 6.0, 11.0]

    def test_stop_function(self):
        sim = Simulator()
        ticks = []
        stop = sim.every(1.0, lambda s: ticks.append(s.now))
        sim.schedule(3.5, lambda s: stop())
        sim.run(until=10.0)
        assert ticks == [1.0, 2.0, 3.0]

    def test_zero_interval_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.every(0.0, lambda s: None)
