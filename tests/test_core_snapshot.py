"""Unit tests for overlay snapshot/restore."""

import numpy as np
import pytest

from repro.core import CoordinationServer, NodeStatus
from repro.core.snapshot import (
    load_snapshot,
    restore_server,
    save_snapshot,
    snapshot_server,
)


@pytest.fixture
def busy_server(rng):
    """A server with joins, a failure, congestion and a heterogeneous node."""
    server = CoordinationServer(k=12, d=3, rng=rng)
    for _ in range(20):
        server.hello()
    server.hello(d=5)
    server.fail(4)
    server.congestion_drop(7)
    server.goodbye(9)
    return server


class TestRoundtrip:
    def test_topology_identical(self, busy_server):
        restored = restore_server(snapshot_server(busy_server), seed=99)
        original = busy_server.matrix
        assert restored.matrix.node_ids == original.node_ids
        for node_id in original.node_ids:
            assert restored.matrix.columns_of(node_id) == original.columns_of(node_id)
            assert restored.matrix.parents_of(node_id) == original.parents_of(node_id)
            assert restored.matrix.children_of(node_id) == original.children_of(node_id)
        assert restored.matrix.hanging_owners() == original.hanging_owners()

    def test_registry_and_failures_identical(self, busy_server):
        restored = restore_server(snapshot_server(busy_server), seed=99)
        assert restored.failed == busy_server.failed
        for node_id, info in busy_server.registry.items():
            copy = restored.registry[node_id]
            assert copy.nominal_degree == info.nominal_degree
            assert copy.status == info.status
            assert copy.dropped_threads == info.dropped_threads
        assert restored.registry[4].status is NodeStatus.FAILED
        assert restored.registry[7].status is NodeStatus.CONGESTED

    def test_json_file_roundtrip(self, busy_server, tmp_path):
        path = tmp_path / "overlay.json"
        save_snapshot(busy_server, path)
        restored = load_snapshot(path, seed=1)
        assert restored.matrix.to_dense().tolist() == \
            busy_server.matrix.to_dense().tolist()

    def test_version_check(self, busy_server):
        document = snapshot_server(busy_server)
        document["version"] = 42
        with pytest.raises(ValueError):
            restore_server(document)


class TestResumedOperation:
    def test_ids_continue_without_collision(self, busy_server):
        restored = restore_server(snapshot_server(busy_server), seed=5)
        existing = set(restored.matrix.node_ids)
        grant = restored.hello()
        assert grant.node_id not in existing
        restored.matrix.check_invariants()

    def test_appends_land_at_the_bottom(self, busy_server):
        """Restored append-mode servers must keep appending below every
        restored row (keys continue past the recorded maximum)."""
        restored = restore_server(snapshot_server(busy_server), seed=5)
        grant = restored.hello()
        assert restored.matrix.node_ids[-1] == grant.node_id

    def test_pending_repairs_still_work(self, busy_server):
        restored = restore_server(snapshot_server(busy_server), seed=5)
        assert 4 in restored.failed
        restored.repair(4)
        assert 4 not in restored.matrix
        restored.matrix.check_invariants()

    def test_uniform_mode_restores(self, rng):
        server = CoordinationServer(k=10, d=2, rng=rng, insert_mode="uniform")
        for _ in range(30):
            server.hello()
        restored = restore_server(snapshot_server(server), seed=6)
        assert restored.insert_mode == "uniform"
        assert restored.matrix.node_ids == server.matrix.node_ids
        restored.hello()  # uniform insertion still works post-restore
        restored.matrix.check_invariants()

    def test_restored_overlay_carries_broadcast(self, busy_server):
        """End to end: a restored overlay serves a bit-exact download."""
        from repro.coding import GenerationParams
        from repro.core import OverlayNetwork
        from repro.sim import BroadcastSimulation

        busy_server.repair_all()
        restored = restore_server(snapshot_server(busy_server), seed=7)
        facade = OverlayNetwork.__new__(OverlayNetwork)
        facade.rng = np.random.default_rng(8)
        facade.server = restored
        content = bytes(np.random.default_rng(9).integers(
            0, 256, size=800, dtype=np.uint8
        ))
        sim = BroadcastSimulation(
            facade, content, GenerationParams(6, 50), seed=10
        )
        report = sim.run_until_complete(max_slots=800)
        assert report.completion_fraction == 1.0
        assert all(n.decoded_ok for n in report.nodes)
