"""Unit tests for the max-flow solver, cross-checked against networkx."""

import networkx as nx
import numpy as np
import pytest

from repro.analysis import FlowNetwork


def build_diamond():
    """s -> a,b -> t with capacities allowing flow 2."""
    net = FlowNetwork()
    net.add_edge("s", "a", 1)
    net.add_edge("s", "b", 1)
    net.add_edge("a", "t", 1)
    net.add_edge("b", "t", 1)
    return net


class TestMaxFlowBasics:
    def test_diamond(self):
        assert build_diamond().max_flow("s", "t") == 2

    def test_bottleneck(self):
        net = FlowNetwork()
        net.add_edge("s", "a", 5)
        net.add_edge("a", "t", 2)
        assert net.max_flow("s", "t") == 2

    def test_disconnected(self):
        net = FlowNetwork()
        net.add_edge("s", "a", 1)
        net.add_edge("b", "t", 1)
        assert net.max_flow("s", "t") == 0

    def test_unknown_vertices(self):
        net = build_diamond()
        assert net.max_flow("s", "zzz") == 0
        assert net.max_flow("zzz", "t") == 0

    def test_source_equals_sink_raises(self):
        net = build_diamond()
        with pytest.raises(ValueError):
            net.max_flow("s", "s")

    def test_limit_stops_early(self):
        net = build_diamond()
        assert net.max_flow("s", "t", limit=1) == 1

    def test_negative_capacity_raises(self):
        net = FlowNetwork()
        with pytest.raises(ValueError):
            net.add_edge("a", "b", -1)

    def test_parallel_edges_accumulate(self):
        net = FlowNetwork()
        net.add_edge("s", "a", 1)
        net.add_edge("s", "a", 1)
        net.add_edge("a", "t", 3)
        assert net.max_flow("s", "t") == 2

    def test_needs_residual_pushback(self):
        """Classic case where a greedy path must be partially undone."""
        net = FlowNetwork()
        net.add_edge("s", "a", 1)
        net.add_edge("s", "b", 1)
        net.add_edge("a", "b", 1)
        net.add_edge("a", "t", 1)
        net.add_edge("b", "t", 1)
        assert net.max_flow("s", "t") == 2


class TestSnapshotRestore:
    def test_restore_allows_rerun(self):
        net = build_diamond()
        base = net.snapshot()
        assert net.max_flow("s", "t") == 2
        assert net.max_flow("s", "t") == 0  # capacities consumed
        net.restore(base)
        assert net.max_flow("s", "t") == 2

    def test_truncate_removes_temp_edges(self):
        net = build_diamond()
        base = net.snapshot()
        mark = net.edge_mark()
        net.add_edge("t", "super", 2)
        assert net.max_flow("s", "super") == 2
        net.truncate(mark)
        net.restore(base)
        assert net.max_flow("s", "super") == 0
        net.restore(base)
        assert net.max_flow("s", "t") == 2

    def test_truncate_rejects_odd_floor(self):
        net = build_diamond()
        with pytest.raises(ValueError):
            net.truncate(1)

    def test_edge_count(self):
        assert build_diamond().edge_count == 4


class TestAgainstNetworkx:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_graphs_match(self, seed):
        rng = np.random.default_rng(seed)
        n = 12
        graph = nx.gnp_random_graph(n, 0.35, seed=seed, directed=True)
        net = FlowNetwork()
        for u, v in graph.edges:
            capacity = int(rng.integers(1, 5))
            graph[u][v]["capacity"] = capacity
            net.add_edge(u, v, capacity)
        source, sink = 0, n - 1
        if not graph.has_node(source) or not graph.has_node(sink):
            pytest.skip("degenerate random graph")
        net.vertex(source)
        net.vertex(sink)
        expected = nx.maximum_flow_value(graph, source, sink)
        assert net.max_flow(source, sink) == expected
