"""Unit tests for defect trajectories and sparkline rendering."""

import pytest

from repro.analysis import measure_defect_trajectory
from repro.metrics import sparkline
from repro.theory import theorem4_prediction


class TestTrajectory:
    def test_shape(self):
        trajectory = measure_defect_trajectory(
            k=16, d=2, p=0.02, arrivals=200, sample_every=25,
            defect_samples=60, seed=1,
        )
        assert len(trajectory.points) == 8
        assert trajectory.points[-1].arrivals == 200
        assert all(0.0 <= v <= 2.0 for v in trajectory.values)

    def test_zero_p_zero_defect(self):
        trajectory = measure_defect_trajectory(
            k=16, d=2, p=0.0, arrivals=150, sample_every=50,
            defect_samples=60, seed=2,
        )
        assert trajectory.peak() == 0.0
        assert trajectory.steady_state_mean() == 0.0

    def test_steady_state_tracks_attractor(self):
        """The long-run mean stays within a small multiple of a1."""
        k, d, p = 32, 2, 0.02
        trajectory = measure_defect_trajectory(
            k=k, d=d, p=p, arrivals=600, sample_every=30,
            defect_samples=150, seed=3,
        )
        attractor = theorem4_prediction(k, d, p).attractor
        assert trajectory.steady_state_mean() <= 3.0 * attractor

    def test_failed_rows_recorded(self):
        trajectory = measure_defect_trajectory(
            k=16, d=2, p=0.5, arrivals=100, sample_every=50,
            defect_samples=40, seed=4,
        )
        assert trajectory.points[-1].failed_rows > 20

    def test_validation(self):
        with pytest.raises(ValueError):
            measure_defect_trajectory(k=16, d=2, p=0.1, arrivals=10,
                                      sample_every=0)


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_monotone_series(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert line == "▁▂▃▄▅▆▇█"

    def test_explicit_scale(self):
        line = sparkline([0.5], low=0.0, high=1.0)
        assert line in "▄▅"  # middle of the scale

    def test_length_matches(self):
        assert len(sparkline(range(13))) == 13


class TestTrajectoryCli:
    def test_command_runs(self, capsys):
        from repro.cli import main

        code = main(["trajectory", "--k", "16", "--d", "2", "--p", "0.02",
                     "--arrivals", "100", "--sample-every", "50"])
        out = capsys.readouterr().out
        assert code == 0
        assert "drift attractor" in out

    def test_out_of_regime_handled(self, capsys):
        from repro.cli import main

        code = main(["trajectory", "--k", "10", "--d", "2", "--p", "0.2",
                     "--arrivals", "60", "--sample-every", "30"])
        out = capsys.readouterr().out
        assert code == 0
        assert "too large" in out
