"""Cross-layer integration: the deployed control plane evolves the
topology, then the data plane broadcasts over the result."""

import numpy as np

from repro.coding import GenerationParams
from repro.protocol_sim import ProtocolConfig, ProtocolSimulation
from repro.sim import BroadcastSimulation


class TestControlPlaneThenDataPlane:
    def test_broadcast_over_actor_evolved_topology(self):
        """Joins, crashes and repairs happen through real messages; the
        matrix that emerges must carry a bit-exact broadcast."""
        deployment = ProtocolSimulation(ProtocolConfig(k=14, d=3, seed=61))
        deployment.grow(30, settle=3.0)
        # two crashes detected and repaired through the message path
        for _ in range(2):
            parents = [
                n for n in deployment.core.matrix.node_ids
                if deployment.peers[n].alive
                and any(c is not None
                        for c in deployment.core.matrix.children_of(n).values())
            ]
            deployment.crash(parents[0])
            deployment.run(4.0)
        deployment.grow(5, settle=3.0)
        assert deployment.consistency_check()

        # hand the evolved overlay to the data plane
        net_view = _overlay_facade(deployment)
        rng = np.random.default_rng(62)
        content = bytes(rng.integers(0, 256, size=2000, dtype=np.uint8))
        sim = BroadcastSimulation(
            net_view, content, GenerationParams(8, 125), seed=63
        )
        report = sim.run_until_complete(max_slots=1200)
        assert report.completion_fraction == 1.0
        assert all(n.decoded_ok for n in report.nodes)

    def test_peer_views_drive_same_edges_as_matrix(self):
        """The actors' local parent/child maps and the matrix describe
        the same overlay — the property the data plane relies on."""
        deployment = ProtocolSimulation(
            ProtocolConfig(k=12, d=2, seed=64, insert_mode="uniform")
        )
        deployment.grow(25, settle=4.0)
        matrix = deployment.core.matrix
        for node_id, peer in deployment.peers.items():
            if node_id not in matrix:
                continue
            for column, parent in matrix.parents_of(node_id).items():
                assert peer.parents[column] == parent


def _overlay_facade(deployment: ProtocolSimulation):
    """Wrap the deployment's core server in the OverlayNetwork facade."""
    from repro.core import OverlayNetwork

    facade = OverlayNetwork.__new__(OverlayNetwork)
    facade.rng = np.random.default_rng(0)
    facade.server = deployment.core
    return facade
