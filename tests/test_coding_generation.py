"""Unit tests for generation splitting and reassembly."""

import numpy as np
import pytest

from repro.coding import GenerationParams, join_content, split_content


class TestGenerationParams:
    def test_valid(self):
        params = GenerationParams(generation_size=8, payload_size=32)
        assert params.generation_bytes == 256

    def test_invalid(self):
        with pytest.raises(ValueError):
            GenerationParams(generation_size=0, payload_size=32)
        with pytest.raises(ValueError):
            GenerationParams(generation_size=8, payload_size=0)

    def test_generations_for(self):
        params = GenerationParams(generation_size=4, payload_size=4)  # 16 B/gen
        assert params.generations_for(0) == 1
        assert params.generations_for(1) == 1
        assert params.generations_for(16) == 1
        assert params.generations_for(17) == 2
        assert params.generations_for(160) == 10

    def test_generations_for_negative_raises(self):
        params = GenerationParams(generation_size=4, payload_size=4)
        with pytest.raises(ValueError):
            params.generations_for(-1)


class TestSplitJoin:
    def test_roundtrip_exact_multiple(self, rng):
        params = GenerationParams(generation_size=4, payload_size=8)
        content = bytes(rng.integers(0, 256, size=64, dtype=np.uint8))
        blocks = split_content(content, params)
        assert len(blocks) == 2
        assert join_content(blocks, len(content)) == content

    def test_roundtrip_with_padding(self, rng):
        params = GenerationParams(generation_size=4, payload_size=8)
        content = bytes(rng.integers(0, 256, size=45, dtype=np.uint8))
        blocks = split_content(content, params)
        assert len(blocks) == 2
        # final generation padded with zeros
        flat = np.concatenate([b.data.reshape(-1) for b in blocks])
        assert not flat[45:].any()
        assert join_content(blocks, len(content)) == content

    def test_empty_content(self):
        params = GenerationParams(generation_size=2, payload_size=2)
        blocks = split_content(b"", params)
        assert len(blocks) == 1
        assert join_content(blocks, 0) == b""

    def test_block_shapes(self, rng):
        params = GenerationParams(generation_size=3, payload_size=5)
        blocks = split_content(bytes(40), params)
        for block in blocks:
            assert block.data.shape == (3, 5)

    def test_join_detects_missing_generation(self, rng):
        params = GenerationParams(generation_size=2, payload_size=4)
        blocks = split_content(bytes(32), params)
        with pytest.raises(ValueError):
            join_content(blocks[1:], 8)

    def test_join_unsorted_input_ok(self, rng):
        params = GenerationParams(generation_size=2, payload_size=4)
        content = bytes(rng.integers(0, 256, size=32, dtype=np.uint8))
        blocks = split_content(content, params)
        assert join_content(list(reversed(blocks)), len(content)) == content

    def test_join_length_overflow_raises(self):
        params = GenerationParams(generation_size=2, payload_size=4)
        blocks = split_content(bytes(8), params)
        with pytest.raises(ValueError):
            join_content(blocks, 100)
