"""Cross-simulator equivalence goldens for the unified runtime migration.

The five slotted data-plane loops (curtain RLNC, random-graph RLNC,
store-and-forward flooding, rarest-first, streaming playback) were
captured on fixed seeds *before* they were migrated onto
:mod:`repro.sim.runtime`.  These tests re-run the same scenarios and
assert the reports are field-identical, so the refactor is provably
behaviour-neutral on the paths the paper's claims depend on.

Regenerate (only when a behaviour change is intended)::

    PYTHONPATH=src python tests/test_runtime_goldens.py --capture
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

GOLDEN_DIR = Path(__file__).parent / "goldens"


def _content(size: int, seed: int) -> bytes:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=size, dtype=np.uint8).tobytes()


def _node_rows(report) -> list[dict]:
    return [
        {
            "node_id": n.node_id,
            "rank": n.rank,
            "needed": n.needed,
            "completed_at": n.completed_at,
            "received": n.received,
            "innovative": n.innovative,
            "decoded_ok": n.decoded_ok,
        }
        for n in report.nodes
    ]


def _broadcast_dump(report) -> dict:
    return {
        "slots": report.slots,
        "server_packets": report.server_packets,
        "attempted": report.link_stats.attempted,
        "delivered": report.link_stats.delivered,
        "completion_fraction": report.completion_fraction,
        "nodes": _node_rows(report),
    }


def _flooding_dump(report) -> dict:
    return {
        "slots": report.slots,
        "completion_fraction": report.completion_fraction,
        "mean_unique_fraction": report.mean_unique_fraction,
        "duplicate_fraction": report.duplicate_fraction,
        "completion_slots": sorted(report.completion_slots),
    }


# ----------------------------------------------------------------------
# Scenarios — geometry/seeds are frozen; do not edit without recapturing.


def scenario_curtain() -> dict:
    """Curtain RLNC with loss, outages, and both §7 attacker roles."""
    from repro.coding.generation import GenerationParams
    from repro.core import OverlayNetwork
    from repro.sim import BroadcastSimulation, LossModel, NodeRole, OutageModel

    net = OverlayNetwork(k=8, d=2, seed=101)
    nodes = net.grow(24)
    sim = BroadcastSimulation(
        net,
        _content(4096, 202),
        GenerationParams(generation_size=16, payload_size=64),
        seed=303,
        loss=LossModel(0.1),
        outage=OutageModel(onset=0.01, recovery=0.3),
        roles={nodes[5]: NodeRole.ENTROPY_ATTACKER, nodes[11]: NodeRole.JAMMER},
    )
    report = sim.run_until_complete(max_slots=400)
    return _broadcast_dump(report)


def scenario_curtain_detach() -> dict:
    """Curtain RLNC exercising server detach + swarm-rank probing."""
    from repro.coding.generation import GenerationParams
    from repro.core import OverlayNetwork
    from repro.sim import BroadcastSimulation

    net = OverlayNetwork(k=6, d=2, seed=11)
    net.grow(12)
    sim = BroadcastSimulation(
        net,
        _content(2048, 12),
        GenerationParams(generation_size=8, payload_size=64),
        seed=13,
    )
    while not sim.swarm_has_full_rank() and sim.slot < 200:
        sim.step()
    detach_slot = sim.slot
    sim.detach_server()
    report = sim.run_until_complete(max_slots=400)
    dump = _broadcast_dump(report)
    dump["detach_slot"] = detach_slot
    return dump


def scenario_graph() -> dict:
    """Random-graph (§6, cyclic) RLNC broadcast under loss."""
    from repro.coding.generation import GenerationParams
    from repro.core.random_graph import RandomGraphOverlay
    from repro.sim import GraphBroadcastSimulation, LossModel

    overlay = RandomGraphOverlay(k=8, d=2, seed=77)
    overlay.grow(20)
    sim = GraphBroadcastSimulation(
        overlay,
        _content(4096, 78),
        GenerationParams(generation_size=16, payload_size=64),
        seed=79,
        loss=LossModel(0.05),
    )
    report = sim.run_until_complete(max_slots=400)
    return _broadcast_dump(report)


def scenario_store_forward() -> dict:
    """Uncoded random flooding with loss and one failed node."""
    from repro.baselines import FloodingSimulation
    from repro.core import OverlayNetwork
    from repro.sim import LossModel

    net = OverlayNetwork(k=6, d=2, seed=55)
    nodes = net.grow(16)
    net.fail(nodes[7])
    sim = FloodingSimulation(net, packet_count=12, seed=56, loss=LossModel(0.05))
    report = sim.run_until_complete(max_slots=600)
    return _flooding_dump(report)


def scenario_rarest_first() -> dict:
    """Rarest-first flooding on the same geometry as store-forward."""
    from repro.baselines import RarestFirstSimulation
    from repro.core import OverlayNetwork
    from repro.sim import LossModel

    net = OverlayNetwork(k=6, d=2, seed=55)
    nodes = net.grow(16)
    net.fail(nodes[7])
    sim = RarestFirstSimulation(net, packet_count=12, seed=56, loss=LossModel(0.05))
    report = sim.run_until_complete(max_slots=600)
    return _flooding_dump(report)


def scenario_session_churn() -> dict:
    """run_session with failures/repairs/joins/leaves and attackers."""
    from repro.sim import SessionConfig, run_session

    result = run_session(
        SessionConfig(
            k=8,
            d=2,
            population=20,
            content_size=2048,
            generation_size=8,
            payload_size=64,
            loss_rate=0.05,
            fail_probability=0.05,
            repair_interval=20,
            join_rate=1,
            leave_probability=0.02,
            entropy_attacker_fraction=0.1,
            max_slots=400,
            seed=909,
        )
    )
    dump = _broadcast_dump(result.report)
    dump["failures_injected"] = result.failures_injected
    dump["repairs_performed"] = result.repairs_performed
    dump["joins"] = result.joins
    dump["graceful_leaves"] = result.graceful_leaves
    dump["joined_at"] = {str(k): v for k, v in sorted(result.joined_at.items())}
    return dump


def scenario_streaming() -> dict:
    """Playback monitor continuity over a lossy curtain broadcast."""
    from repro.coding.generation import GenerationParams
    from repro.core import OverlayNetwork
    from repro.sim import BroadcastSimulation, LossModel, PlaybackMonitor

    net = OverlayNetwork(k=6, d=2, seed=21)
    net.grow(12)
    sim = BroadcastSimulation(
        net,
        _content(4096, 22),
        GenerationParams(generation_size=8, payload_size=64),
        seed=23,
        loss=LossModel(0.1),
    )
    monitor = PlaybackMonitor(sim, window=12, startup_delay=8)
    monitor.run(160)
    return {
        "slots": sim.slot,
        "continuity": {
            str(k): v for k, v in sorted(monitor.continuity_summary().items())
        },
    }


SCENARIOS = {
    "curtain": scenario_curtain,
    "curtain_detach": scenario_curtain_detach,
    "graph": scenario_graph,
    "store_forward": scenario_store_forward,
    "rarest_first": scenario_rarest_first,
    "session_churn": scenario_session_churn,
    "streaming": scenario_streaming,
}


def capture() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    for name, build in SCENARIOS.items():
        path = GOLDEN_DIR / f"{name}.json"
        path.write_text(json.dumps(build(), indent=2, sort_keys=True) + "\n")
        print(f"wrote {path}")


class TestGoldenEquivalence:
    """Each simulator must reproduce its pre-refactor seeded run exactly."""

    def _check(self, name: str) -> None:
        golden = json.loads((GOLDEN_DIR / f"{name}.json").read_text())
        current = json.loads(json.dumps(SCENARIOS[name]()))
        assert current == golden

    def test_curtain(self):
        self._check("curtain")

    def test_curtain_detach(self):
        self._check("curtain_detach")

    def test_graph(self):
        self._check("graph")

    def test_store_forward(self):
        self._check("store_forward")

    def test_rarest_first(self):
        self._check("rarest_first")

    def test_session_churn(self):
        self._check("session_churn")

    def test_streaming(self):
        self._check("streaming")


if __name__ == "__main__":
    import sys

    if "--capture" in sys.argv:
        capture()
    else:
        print(__doc__)
