"""The obs core: registries, histograms, flight recorder, instruments.

Property tests pin the two contracts the hot path relies on: a
snapshot is exactly the sum of the increments that produced it, and
histogram bucket boundaries are exact (a sample equal to a bound lands
in that bound's bucket, one ulp above lands in the next).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    Counter,
    FlightRecorder,
    Gauge,
    Histogram,
    POW2_LATENCY_BOUNDS,
    Registry,
    format_dump,
    pow2_bounds,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("x", "")
        counter.inc()
        counter.inc(5)
        assert counter.value == 6
        assert counter.snapshot_value() == 6


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g", "")
        gauge.set(10)
        gauge.inc(2.5)
        gauge.dec()
        assert gauge.snapshot_value() == 11.5

    def test_bound_callback_wins_over_stored_value(self):
        gauge = Gauge("g", "")
        gauge.set(1)
        state = {"depth": 7}
        gauge.bind(lambda: state["depth"])
        assert gauge.snapshot_value() == 7
        state["depth"] = 9
        assert gauge.snapshot_value() == 9


class TestHistogram:
    def test_exact_boundary_lands_in_its_bucket(self):
        hist = Histogram("h", "", bounds=(1.0, 2.0, 4.0))
        hist.observe(1.0)  # == first bound -> first bucket (le semantics)
        hist.observe(2.0)
        hist.observe(4.0)
        assert hist.bucket_counts == [1, 1, 1, 0]

    def test_one_ulp_above_bound_spills_to_next_bucket(self):
        import math

        hist = Histogram("h", "", bounds=(1.0, 2.0))
        hist.observe(math.nextafter(1.0, 2.0))
        assert hist.bucket_counts == [0, 1, 0]

    def test_overflow_bucket(self):
        hist = Histogram("h", "", bounds=(1.0,))
        hist.observe(100.0)
        assert hist.bucket_counts == [0, 1]
        assert hist.count == 1
        assert hist.sum == 100.0

    def test_pow2_bounds_are_powers_of_two(self):
        bounds = pow2_bounds(1e-6, 5)
        assert len(bounds) == 5
        for i in range(1, len(bounds)):
            assert bounds[i] == pytest.approx(2 * bounds[i - 1])
        # The default latency scale spans ~1 microsecond to ~4 seconds.
        assert POW2_LATENCY_BOUNDS[0] == pytest.approx(1e-6)
        assert POW2_LATENCY_BOUNDS[-1] > 1.0

    @settings(max_examples=50, deadline=None)
    @given(samples=st.lists(
        st.floats(min_value=0.0, max_value=1e6,
                  allow_nan=False, allow_infinity=False),
        max_size=50,
    ))
    def test_buckets_partition_the_samples(self, samples):
        """Every sample lands in exactly one bucket; count/sum agree."""
        hist = Histogram("h", "", bounds=(1.0, 10.0, 100.0))
        for sample in samples:
            hist.observe(sample)
        assert sum(hist.bucket_counts) == hist.count == len(samples)
        assert hist.sum == pytest.approx(sum(samples))
        for i, bound in enumerate(hist.bounds):
            lower = hist.bounds[i - 1] if i else None
            expected = sum(
                1 for s in samples
                if s <= bound and (lower is None or s > lower)
            )
            assert hist.bucket_counts[i] == expected


class TestRegistry:
    def test_idempotent_constructors_return_same_instrument(self):
        registry = Registry("r")
        first = registry.counter("events", "help")
        second = registry.counter("events")
        assert first is second

    def test_kind_collision_is_an_error(self):
        registry = Registry("r")
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")

    @settings(max_examples=50, deadline=None)
    @given(increments=st.lists(st.integers(min_value=0, max_value=1000),
                               max_size=30))
    def test_snapshot_equals_sum_of_increments(self, increments):
        registry = Registry("r")
        counter = registry.counter("hits")
        for amount in increments:
            counter.inc(amount)
        snap = registry.snapshot()
        assert snap["counters"]["hits"] == sum(increments)

    def test_snapshot_sections_are_sorted(self):
        registry = Registry("r")
        registry.counter("zz")
        registry.counter("aa")
        registry.gauge("mm").set(1)
        snap = registry.snapshot()
        assert list(snap["counters"]) == ["aa", "zz"]
        assert set(snap) == {"counters", "gauges", "histograms"}


class TestFlightRecorder:
    def test_ring_keeps_only_the_tail(self):
        flight = FlightRecorder(capacity=3)
        for i in range(10):
            flight.record(f"event{i}", [f"effect{i}"])
        assert flight.recorded == 10
        assert [seq for seq, _, _ in flight.tail(3)] == [7, 8, 9]

    def test_format_dump_names_label_and_truncation(self):
        flight = FlightRecorder(capacity=2)
        flight.record("ev1", [])
        flight.record("ev2", ["fx"])
        flight.record("ev3", [])
        text = format_dump(flight, "server")
        assert "flight recorder: server" in text
        assert "last 2 of 3 steps" in text
        assert "'ev1'" not in text  # evicted
        assert "'ev3'" in text

    def test_empty_recorder_renders_placeholder(self):
        text = format_dump(FlightRecorder(), "peer0")
        assert "(no steps recorded)" in text


class TestInstruments:
    def test_server_instruments_classify_effects(self):
        from repro.obs import ServerEngineInstruments
        from repro.protocol.effects import Admitted, PeerDeparted, Send
        from repro.protocol.messages import Probe

        registry = Registry("r")
        instruments = ServerEngineInstruments(registry)
        instruments.record_step("ev", [Admitted(node_id=1, assignments=())])
        instruments.record_step("ev", [Send(5, Probe(nonce=1))])
        instruments.record_step("ev", [PeerDeparted(node_id=1, reason="crash")])
        instruments.record_step("ev", [PeerDeparted(node_id=2, reason="leave")])
        snap = registry.snapshot()["counters"]
        assert snap["engine.joins"] == 1
        assert snap["engine.probes_sent"] == 1
        assert snap["engine.crashes"] == 1
        assert snap["engine.leaves"] == 1
        assert snap["engine.events"] == 4

    def test_peer_instruments_classify_effects(self):
        from repro.obs import PeerEngineInstruments
        from repro.protocol.effects import Backoff, Clip, Send
        from repro.protocol.messages import ComplaintMsg, KeepAlive

        registry = Registry("r")
        instruments = PeerEngineInstruments(registry)
        instruments.record_step("ev", [Clip(column=0, parent=1)])
        instruments.record_step("ev", [Backoff(column=0, delay=0.1)])
        instruments.record_step(
            "ev", [Send(0, ComplaintMsg(reporter=1, column=0, suspect=3)),
                   Send(0, KeepAlive(column=0, sender=1))]
        )
        snap = registry.snapshot()["counters"]
        assert snap["engine.clips"] == 1
        assert snap["engine.backoffs"] == 1
        assert snap["engine.complaints_sent"] == 1
        assert snap["engine.keepalives_sent"] == 1
