"""Unit tests for broadcast capacity analysis."""


from repro.analysis import (
    broadcast_capacity,
    capacity_matches_branchings,
)
from repro.core import OverlayNetwork


class TestBroadcastCapacity:
    def test_healthy_overlay_capacity_is_d(self, small_net):
        report = broadcast_capacity(small_net.matrix)
        assert report.capacity == 3
        assert report.mean_connectivity == 3.0
        assert len(report.bottlenecks) == 40  # everyone at d

    def test_failure_lowers_capacity(self, small_net):
        victim = small_net.matrix.node_ids[0]
        children = {
            c for c in small_net.matrix.children_of(victim).values()
            if c is not None
        }
        small_net.fail(victim)
        report = broadcast_capacity(small_net.matrix, small_net.failed)
        assert report.capacity < 3
        assert set(report.bottlenecks) <= children

    def test_empty_overlay(self):
        net = OverlayNetwork(k=8, d=2, seed=1)
        report = broadcast_capacity(net.matrix)
        assert report.capacity == 0
        assert report.bottlenecks == ()

    def test_all_failed(self, tiny_net):
        for node in list(tiny_net.working_nodes):
            tiny_net.fail(node)
        report = broadcast_capacity(tiny_net.matrix, tiny_net.failed)
        assert report.capacity == 0

    def test_connectivity_dict_complete(self, small_net):
        report = broadcast_capacity(small_net.matrix)
        assert set(report.connectivity) == set(small_net.matrix.node_ids)


class TestEdmondsEquivalence:
    def test_healthy_overlay(self, tiny_net):
        assert capacity_matches_branchings(tiny_net.matrix)

    def test_with_failures(self, tiny_net):
        tiny_net.fail(tiny_net.matrix.node_ids[2])
        assert capacity_matches_branchings(tiny_net.matrix, tiny_net.failed)

    def test_trivial_empty(self):
        net = OverlayNetwork(k=6, d=2, seed=2)
        assert capacity_matches_branchings(net.matrix)
