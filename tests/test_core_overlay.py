"""Unit tests for the OverlayNetwork facade."""

import numpy as np
import pytest

from repro.core import OverlayNetwork


class TestLifecycle:
    def test_grow(self, small_net):
        assert small_net.population == 40
        assert len(small_net.working_nodes) == 40

    def test_join_returns_grant(self, small_net):
        grant = small_net.join()
        assert grant.node_id == 40
        assert small_net.population == 41

    def test_leave(self, small_net):
        small_net.leave(0)
        assert small_net.population == 39
        small_net.matrix.check_invariants()

    def test_fail_and_repair(self, small_net):
        small_net.fail(3)
        assert 3 in small_net.failed
        assert 3 not in small_net.working_nodes
        small_net.repair(3)
        assert small_net.failed == frozenset()
        assert small_net.population == 39

    def test_repair_all(self, small_net):
        for node in (1, 2, 3):
            small_net.fail(node)
        small_net.repair_all()
        assert small_net.failed == frozenset()
        assert small_net.population == 37

    def test_random_working_node(self, small_net):
        node = small_net.random_working_node()
        assert node in small_net.working_nodes

    def test_random_working_node_empty_raises(self):
        net = OverlayNetwork(k=6, d=2, seed=1)
        with pytest.raises(RuntimeError):
            net.random_working_node()


class TestMeasurements:
    def test_full_connectivity_without_failures(self, small_net):
        histogram = small_net.connectivity_histogram()
        assert histogram == {3: 40}

    def test_connectivity_drops_for_children_of_failed(self, small_net):
        victim = 0  # early node: likely to have children
        children = {
            child
            for child in small_net.matrix.children_of(victim).values()
            if child is not None
        }
        small_net.fail(victim)
        for child in children:
            assert small_net.connectivity(child) < 3

    def test_connectivities_match_single_queries(self, small_net):
        small_net.fail(2)
        bulk = small_net.connectivities()
        for node in list(bulk)[:10]:
            assert bulk[node] == small_net.connectivity(node)

    def test_failed_node_connectivity_zero(self, small_net):
        small_net.fail(5)
        assert small_net.connectivity(5) == 0

    def test_graph_excludes_failures_by_default(self, small_net):
        small_net.fail(7)
        assert 7 not in small_net.graph().nodes
        assert 7 in small_net.graph(with_failures=False).nodes

    def test_defect_summary_sampled(self, small_net):
        summary = small_net.defect_summary(samples=50)
        assert summary.samples == 50
        assert not summary.exact
        assert summary.mean_defect == 0.0  # no failures -> no defects

    def test_defect_summary_exact(self, tiny_net):
        summary = tiny_net.defect_summary(samples=None)
        assert summary.exact
        assert summary.samples == 15  # C(6, 2)
        assert summary.mean_defect == 0.0

    def test_defect_appears_with_failure(self, tiny_net):
        tiny_net.fail(tiny_net.matrix.node_ids[-1])  # bottom node owns threads
        summary = tiny_net.defect_summary(samples=None)
        assert summary.mean_defect > 0.0
        assert summary.bad_fraction > 0.0

    def test_mean_depth_positive(self, small_net):
        assert small_net.mean_depth() > 1.0

    def test_seed_reproducibility(self):
        a = OverlayNetwork(k=10, d=2, seed=5)
        b = OverlayNetwork(k=10, d=2, seed=5)
        a.grow(25)
        b.grow(25)
        assert a.matrix.to_dense().tolist() == b.matrix.to_dense().tolist()

    def test_generator_seed_accepted(self):
        rng = np.random.default_rng(3)
        net = OverlayNetwork(k=8, d=2, seed=rng)
        assert net.rng is rng
