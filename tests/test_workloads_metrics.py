"""Unit tests for workload generators, scenarios, and metrics."""

import numpy as np
import pytest

from repro.metrics import Recorder, format_cell, render_table
from repro.workloads import (
    diurnal_schedule,
    file_download,
    flash_crowd,
    flash_crowd_schedule,
    live_streaming,
    steady_schedule,
    total_joins,
)


class TestSchedules:
    def test_steady_statistics(self, rng):
        schedule = steady_schedule(500, 3.0, rng)
        assert len(schedule) == 500
        assert 2.5 < np.mean(schedule) < 3.5

    def test_steady_validation(self, rng):
        with pytest.raises(ValueError):
            steady_schedule(-1, 3.0, rng)

    def test_flash_crowd_peaks_at_peak(self, rng):
        schedule = flash_crowd_schedule(
            100, peak_rate=50.0, peak_at=40, width=5.0, rng=rng
        )
        peak_window = sum(schedule[35:46])
        off_window = sum(schedule[:10]) + sum(schedule[90:])
        assert peak_window > 5 * max(1, off_window)

    def test_flash_crowd_validation(self, rng):
        with pytest.raises(ValueError):
            flash_crowd_schedule(10, 5.0, 5, width=0.0, rng=rng)

    def test_diurnal_oscillates(self, rng):
        schedule = diurnal_schedule(200, mean_rate=10.0, period=50, rng=rng)
        crest = np.mean([schedule[i] for i in range(5, 200, 50)])
        trough = np.mean([schedule[i] for i in range(37, 200, 50)])
        assert crest > trough

    def test_diurnal_validation(self, rng):
        with pytest.raises(ValueError):
            diurnal_schedule(10, 5.0, period=0, rng=rng)
        with pytest.raises(ValueError):
            diurnal_schedule(10, 5.0, period=5, rng=rng, swing=2.0)

    def test_total_joins(self):
        assert total_joins([1, 2, 3]) == 6


class TestScenarios:
    def test_presets_have_sane_geometry(self):
        for preset in (live_streaming, file_download, flash_crowd):
            config = preset(seed=1)
            assert config.k >= config.d
            assert config.population > 0
            assert config.seed == 1

    def test_overrides_applied(self):
        config = live_streaming(seed=2, population=10, k=16)
        assert config.population == 10
        assert config.k == 16

    def test_scenarios_run_end_to_end(self):
        """Scaled-down versions of each preset must complete."""
        from repro.sim import run_session

        for preset in (live_streaming, file_download, flash_crowd):
            config = preset(
                seed=3, population=12, content_size=600, generation_size=6,
                payload_size=32, max_slots=900, join_rate=0,
                fail_probability=0.0, leave_probability=0.0, loss_rate=0.0,
            )
            result = run_session(config)
            assert result.report.completion_fraction == 1.0


class TestRecorder:
    def test_record_and_summary(self):
        recorder = Recorder()
        for t, v in enumerate([1.0, 2.0, 3.0]):
            recorder.record("x", t, v)
        series = recorder.series("x")
        assert len(series) == 3
        assert series.mean() == 2.0
        assert series.min() == 1.0
        assert series.max() == 3.0
        assert series.last() == 3.0
        summary = recorder.summary()
        assert summary["x"]["n"] == 3

    def test_names_sorted(self):
        recorder = Recorder()
        recorder.record("b", 0, 1)
        recorder.record("a", 0, 1)
        assert recorder.names() == ["a", "b"]

    def test_missing_series_raises(self):
        with pytest.raises(KeyError):
            Recorder().series("nope")

    def test_std_single_sample_zero(self):
        recorder = Recorder()
        recorder.record("x", 0, 5)
        assert recorder.series("x").std() == 0.0


class TestReportRendering:
    def test_format_cell(self):
        assert format_cell(None) == "-"
        assert format_cell(True) == "yes"
        assert format_cell(3) == "3"
        assert format_cell(0.25) == "0.25"
        assert format_cell(1e-9) == "1e-09"
        assert format_cell(123456.0) == "1.235e+05"

    def test_render_table_alignment(self):
        table = render_table(["name", "v"], [["a", 1], ["bb", 22]], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert len(lines) == 5

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            render_table(["a"], [[1, 2]])
