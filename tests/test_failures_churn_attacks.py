"""Unit tests for Poisson churn and attack helpers."""

import numpy as np
import pytest

from repro.core import OverlayNetwork
from repro.failures import (
    PoissonChurn,
    assign_attack_roles,
    detect_low_innovation,
)
from repro.sim import NodeRole, Simulator


class TestPoissonChurn:
    def _run(self, failure_fraction=0.4, repair_delay=2.0, until=150.0, seed=5):
        net = OverlayNetwork(k=16, d=2, seed=seed)
        net.grow(40)
        sim = Simulator()
        churn = PoissonChurn(
            net, sim, join_rate=1.5, mean_lifetime=25.0,
            failure_fraction=failure_fraction, repair_delay=repair_delay,
            rng=np.random.default_rng(seed + 1),
        )
        churn.start()
        sim.run(until=until)
        return net, churn

    def test_joins_approximate_rate(self):
        _, churn = self._run()
        joins = len(churn.timeline.joins)
        assert 150 < joins < 300  # Poisson(1.5 * 150) give or take

    def test_every_failure_gets_repaired(self):
        net, churn = self._run(until=100.0)
        failed_ids = {node for _, node in churn.timeline.failures}
        repaired_ids = {node for _, node in churn.timeline.repairs}
        # failures within repair_delay of the end may still be pending
        pending = failed_ids - repaired_ids
        assert pending == set(net.server.failed)

    def test_repair_latency_equals_delay(self):
        _, churn = self._run(repair_delay=3.0)
        for latency in churn.timeline.repair_latencies:
            assert latency == pytest.approx(3.0)

    def test_graceful_only(self):
        net, churn = self._run(failure_fraction=0.0)
        assert not churn.timeline.failures
        assert len(churn.timeline.leaves) > 0
        net.matrix.check_invariants()

    def test_min_population_respected(self):
        net = OverlayNetwork(k=8, d=2, seed=9)
        net.grow(5)
        sim = Simulator()
        churn = PoissonChurn(
            net, sim, join_rate=0.01, mean_lifetime=1.0,
            failure_fraction=0.0, repair_delay=1.0,
            rng=np.random.default_rng(10), min_population=4,
        )
        churn.start()
        sim.run(until=200.0)
        assert net.population >= 4

    def test_invalid_parameters(self):
        net = OverlayNetwork(k=8, d=2, seed=1)
        sim = Simulator()
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            PoissonChurn(net, sim, 0.0, 1.0, 0.5, 1.0, rng)
        with pytest.raises(ValueError):
            PoissonChurn(net, sim, 1.0, 1.0, 1.5, 1.0, rng)
        with pytest.raises(ValueError):
            PoissonChurn(net, sim, 1.0, 1.0, 0.5, -1.0, rng)


class TestAttackHelpers:
    def test_assign_roles_fraction(self, rng):
        roles = assign_attack_roles(list(range(40)), 0.25, NodeRole.JAMMER, rng)
        assert len(roles) == 10
        assert all(r is NodeRole.JAMMER for r in roles.values())

    def test_assign_zero(self, rng):
        assert assign_attack_roles(list(range(10)), 0.0, NodeRole.JAMMER, rng) == {}

    def test_assign_honest_rejected(self, rng):
        with pytest.raises(ValueError):
            assign_attack_roles([1, 2], 0.5, NodeRole.HONEST, rng)

    def test_assign_invalid_fraction(self, rng):
        with pytest.raises(ValueError):
            assign_attack_roles([1, 2], 1.5, NodeRole.JAMMER, rng)

    def test_detector_flags_starved_children(self):
        """Children fed only trivial combinations have low innovation
        efficiency and should be flagged."""
        from repro.coding import GenerationParams
        from repro.sim import BroadcastSimulation

        net = OverlayNetwork(k=8, d=2, seed=31)
        net.grow(20)
        attacker = net.matrix.node_ids[1]
        roles = {attacker: NodeRole.ENTROPY_ATTACKER}
        rng = np.random.default_rng(1)
        content = bytes(rng.integers(0, 256, size=800, dtype=np.uint8))
        sim = BroadcastSimulation(
            net, content, GenerationParams(generation_size=8, payload_size=32),
            seed=32, roles=roles,
        )
        report = sim.run(120)
        children = {
            c for c in net.matrix.children_of(attacker).values() if c is not None
        }
        outcome = detect_low_innovation(report, roles, children, threshold=0.9)
        assert outcome.flagged  # somebody looks starved
        assert outcome.threshold == 0.9
