"""Unit tests for the ASCII matrix renderer."""

from repro.core import OverlayNetwork
from repro.core.visualize import matrix_summary, render_matrix


class TestRenderMatrix:
    def test_small_matrix_full(self, tiny_net):
        text = render_matrix(tiny_net.matrix)
        lines = text.splitlines()
        # header + separator + 10 rows + hanging footer
        assert len(lines) == 13
        assert lines[-1].strip().startswith("hanging")
        # every row has exactly d marks
        for line in lines[2:-1]:
            cells = line.split("| ")[1]
            assert cells.count("#") + cells.count("X") == 2

    def test_failed_rows_marked(self, tiny_net):
        victim = tiny_net.matrix.node_ids[3]
        tiny_net.fail(victim)
        text = render_matrix(tiny_net.matrix, tiny_net.failed)
        assert f"{victim}!" in text
        assert "X" in text

    def test_hanging_footer_symbols(self, tiny_net):
        tiny_net.fail(tiny_net.matrix.node_ids[-1])
        text = render_matrix(tiny_net.matrix, tiny_net.failed)
        footer = text.splitlines()[-1].split("| ")[1]
        assert set(footer) <= {"s", "v", "!"}
        assert "!" in footer  # the bottom node owned hanging threads

    def test_large_matrix_elided(self):
        net = OverlayNetwork(k=10, d=2, seed=5)
        net.grow(200)
        text = render_matrix(net.matrix, max_rows=20)
        assert "rows elided" in text
        assert len(text.splitlines()) < 30

    def test_empty_matrix(self):
        net = OverlayNetwork(k=6, d=2, seed=6)
        text = render_matrix(net.matrix)
        footer = text.splitlines()[-1].split("| ")[1]
        assert footer == "s" * 6


class TestMatrixSummary:
    def test_counts(self, tiny_net):
        tiny_net.fail(tiny_net.matrix.node_ids[-1])
        summary = matrix_summary(tiny_net.matrix, tiny_net.failed)
        assert "10 rows x 6 cols" in summary
        assert "1 failed" in summary
