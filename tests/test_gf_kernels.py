"""Equivalence and regression tests for the batched GF(2^8) kernels.

Two layers of defence for the PR-1 hot-path rewrite:

* property tests proving every batched kernel matches a straightforward
  scalar reference (including zero scalars, the scalar-1 fast path,
  empty bases and full-rank matrices);
* golden regression tests pinning byte-identical behaviour of the
  vectorised decoder and the cached/batched broadcast simulator against
  values captured from the pre-kernel ("seed") implementation.
"""

import hashlib

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding.decoder import Decoder
from repro.coding.encoder import SourceEncoder
from repro.coding.generation import GenerationParams
from repro.core.overlay import OverlayNetwork
from repro.gf import field
from repro.gf.kernels import (
    Workspace,
    addmul_row,
    addmul_rows,
    eliminate,
    gemm,
    mix_rows,
    scale_row,
    scale_row_inplace,
)
from repro.gf.linalg import rref
from repro.gf.tables import MUL
from repro.sim.broadcast import BroadcastSimulation
from repro.sim.links import LossModel

elements = st.integers(min_value=0, max_value=255)


def _vectors(draw, n, width, seed):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=(n, width), dtype=np.uint8)


matrix_shapes = st.tuples(
    st.integers(min_value=1, max_value=8),   # rows
    st.integers(min_value=1, max_value=24),  # width
    st.integers(min_value=0, max_value=2**31 - 1),  # data seed
)


def _scalar_addmul(dest, src, scalar):
    """Element-wise reference: dest[j] ^= scalar * src[j] via table lookup."""
    return np.array(
        [d ^ field.mul(scalar, s) for d, s in zip(dest, src)], dtype=np.uint8
    )


class TestRowKernels:
    @given(matrix_shapes, elements)
    @settings(max_examples=50, deadline=None)
    def test_addmul_row_matches_scalar_reference(self, shape, scalar):
        n, width, seed = shape
        rows = _vectors(None, 2, width, seed)
        dest, src = rows[0].copy(), rows[1]
        expected = _scalar_addmul(dest, src, scalar)
        addmul_row(dest, src, scalar)
        assert np.array_equal(dest, expected)

    @given(matrix_shapes)
    @settings(max_examples=20, deadline=None)
    def test_addmul_row_scalar_one_is_plain_xor(self, shape):
        _, width, seed = shape
        rows = _vectors(None, 2, width, seed)
        dest, src = rows[0].copy(), rows[1]
        addmul_row(dest, src, 1)
        assert np.array_equal(dest, rows[0] ^ src)

    @given(matrix_shapes, elements)
    @settings(max_examples=50, deadline=None)
    def test_scale_row_matches_scalar_reference(self, shape, scalar):
        _, width, seed = shape
        row = _vectors(None, 1, width, seed)[0]
        expected = np.array([field.mul(scalar, v) for v in row], dtype=np.uint8)
        assert np.array_equal(scale_row(row, scalar), expected)
        out = np.empty_like(row)
        assert np.array_equal(scale_row(row, scalar, out=out), expected)
        inplace = row.copy()
        scale_row_inplace(inplace, scalar)
        assert np.array_equal(inplace, expected)

    @given(matrix_shapes, st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_addmul_rows_matches_row_loop(self, shape, scalar_seed):
        n, width, seed = shape
        dest = _vectors(None, n, width, seed)
        src = _vectors(None, 1, width, seed + 1)[0]
        scalars = np.random.default_rng(scalar_seed).integers(
            0, 256, size=n, dtype=np.uint8
        )
        expected = dest.copy()
        for i in range(n):
            addmul_row(expected[i], src, int(scalars[i]))
        got = dest.copy()
        addmul_rows(got, src, scalars, workspace=Workspace())
        assert np.array_equal(got, expected)

    def test_addmul_rows_zero_scalars_and_empty_dest_are_noops(self):
        dest = np.random.default_rng(0).integers(0, 256, (4, 9), dtype=np.uint8)
        src = np.random.default_rng(1).integers(0, 256, 9, dtype=np.uint8)
        before = dest.copy()
        addmul_rows(dest, src, np.zeros(4, dtype=np.uint8))
        assert np.array_equal(dest, before)
        empty = np.zeros((0, 9), dtype=np.uint8)
        addmul_rows(empty, src, np.zeros(0, dtype=np.uint8))  # must not raise

    @given(matrix_shapes, st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_mix_rows_matches_addmul_loop(self, shape, scalar_seed):
        n, width, seed = shape
        rows = _vectors(None, n, width, seed)
        scalars = np.random.default_rng(scalar_seed).integers(
            0, 256, size=n, dtype=np.uint8
        )
        expected = np.zeros(width, dtype=np.uint8)
        for i in range(n):
            addmul_row(expected, rows[i], int(scalars[i]))
        got = mix_rows(scalars, rows, workspace=Workspace())
        assert np.array_equal(got, expected)
        out = np.empty(width, dtype=np.uint8)
        assert np.array_equal(mix_rows(scalars, rows, out=out), expected)

    def test_mix_rows_empty_input_is_zero(self):
        out = mix_rows(np.zeros(0, dtype=np.uint8), np.zeros((0, 7), dtype=np.uint8))
        assert np.array_equal(out, np.zeros(7, dtype=np.uint8))


class TestEliminate:
    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_per_column_loop_on_rref_basis(self, size, seed):
        # Build an RREF basis (the decoder invariant eliminate() relies on)
        # from a full-rank-or-less random matrix, then reduce a fresh row
        # both ways.
        rng = np.random.default_rng(seed)
        width = size + 5
        raw = rng.integers(0, 256, size=(size, width), dtype=np.uint8)
        reduced, pivots = rref(raw, ncols=size)
        if not pivots:
            return
        basis = reduced[: len(pivots)]
        pivot_cols = np.asarray(pivots, dtype=np.intp)

        row = rng.integers(0, 256, size=width, dtype=np.uint8)
        expected = row.copy()
        for i, col in enumerate(pivot_cols):
            addmul_row(expected, basis[i], int(expected[col]))
        got = row.copy()
        eliminate(got, basis, pivot_cols, workspace=Workspace())
        assert np.array_equal(got, expected)
        # Reduced row is zero at every basis pivot column.
        assert not got[pivot_cols].any()

    def test_empty_basis_is_noop(self):
        row = np.random.default_rng(3).integers(0, 256, 12, dtype=np.uint8)
        before = row.copy()
        eliminate(row, np.zeros((0, 12), dtype=np.uint8), np.zeros(0, dtype=np.intp))
        assert np.array_equal(row, before)


class TestGemm:
    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_scalar_triple_loop(self, n, m, p, seed):
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 256, size=(n, m), dtype=np.uint8)
        b = rng.integers(0, 256, size=(m, p), dtype=np.uint8)
        expected = np.zeros((n, p), dtype=np.uint8)
        for i in range(n):
            for k in range(p):
                acc = 0
                for j in range(m):
                    acc ^= int(MUL[a[i, j], b[j, k]])
                expected[i, k] = acc
        assert np.array_equal(gemm(a, b), expected)

    def test_zero_operands_masked(self):
        # LOG[0] is a sentinel; products involving zero must come out zero.
        a = np.array([[0, 255], [1, 0]], dtype=np.uint8)
        b = np.array([[0, 7], [9, 0]], dtype=np.uint8)
        expected = np.array(
            [[MUL[255, 9], 0], [0, 7]], dtype=np.uint8
        )
        assert np.array_equal(gemm(a, b), expected)

    def test_identity_and_blocking(self):
        rng = np.random.default_rng(8)
        a = rng.integers(0, 256, size=(5, 70), dtype=np.uint8)
        eye = np.eye(70, dtype=np.uint8)
        # Inner dim 70 spans multiple blocks at block=32.
        assert np.array_equal(gemm(a, eye), a)
        assert np.array_equal(gemm(a, eye, block=7), a)


class TestDecoderRegression:
    """Byte-identical behaviour vs the pre-kernel decoder (pinned goldens)."""

    def test_seeded_stream_recovers_content(self):
        params = GenerationParams(generation_size=16, payload_size=64)
        rng = np.random.default_rng(12345)
        content = bytes(rng.integers(0, 256, size=3000, dtype=np.uint8))
        encoder = SourceEncoder(content, params, np.random.default_rng(777))
        decoder = Decoder(params, encoder.generation_count)
        pushed = []
        while not decoder.is_complete:
            pushed.append(decoder.push(encoder.emit()))
        recovered = decoder.recover(len(content))
        # Goldens captured from the seed implementation before the rewrite.
        assert len(pushed) == 54
        assert sum(pushed) == 48
        assert recovered == content
        assert (
            hashlib.sha256(recovered).hexdigest()
            == "8ef97babee3c7b1fcd71596b104c9a9c5e0fdcbdd1a7904dfc490f92c024a300"
        )

    def test_basis_rows_are_reduced_row_echelon(self):
        params = GenerationParams(generation_size=8, payload_size=32)
        content = bytes(
            np.random.default_rng(2).integers(0, 256, size=256, dtype=np.uint8)
        )
        encoder = SourceEncoder(content, params, np.random.default_rng(3))
        decoder = Decoder(params, 1)
        while not decoder.is_complete:
            decoder.push(encoder.emit())
        gen = decoder.generations[0]
        coeffs = gen.coefficient_rows()
        # Each basis row has a unit pivot and zeros in every other pivot col.
        for i in range(gen.rank):
            pivot = int(np.nonzero(coeffs[i])[0][0])
            assert coeffs[i, pivot] == 1
            assert not coeffs[np.arange(gen.rank) != i, pivot].any()


class TestBroadcastRegression:
    """The cached-topology + batched-loss simulator replays the seed run."""

    def test_seeded_broadcast_is_unchanged(self):
        net = OverlayNetwork(k=4, d=2, seed=99)
        net.grow(12)
        content = bytes(
            np.random.default_rng(5).integers(0, 256, size=2048, dtype=np.uint8)
        )
        sim = BroadcastSimulation(
            net, content, GenerationParams(8, 64), seed=2024, loss=LossModel(0.1)
        )
        report = sim.run_until_complete(max_slots=600)
        # Goldens captured from the seed implementation before the rewrite.
        assert sorted(report.completion_slots()) == [
            27, 28, 30, 30, 33, 34, 36, 38, 52, 53, 53, 54,
        ]
        assert report.slots == 55
        assert report.server_packets == 220
        assert report.link_stats.attempted == 1263
        assert report.link_stats.delivered == 1142
        assert all(node.decoded_ok for node in report.nodes)
