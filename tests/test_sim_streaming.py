"""Unit tests for the streaming playback monitor."""

import numpy as np
import pytest

from repro.coding import GenerationParams
from repro.core import OverlayNetwork
from repro.sim import BroadcastSimulation, LossModel
from repro.sim.streaming import PlaybackMonitor


def make_monitor(window=6, startup_delay=8, loss=0.0, seed=5, population=20):
    net = OverlayNetwork(k=12, d=3, seed=seed)
    net.grow(population)
    rng = np.random.default_rng(seed + 1)
    content = bytes(rng.integers(0, 256, size=4800, dtype=np.uint8))
    sim = BroadcastSimulation(
        net, content, GenerationParams(8, 100), seed=seed + 2,
        loss=LossModel(loss),
    )
    return PlaybackMonitor(sim=sim, window=window, startup_delay=startup_delay), net


class TestPlayback:
    def test_generous_deadlines_no_stalls(self):
        monitor, _ = make_monitor(window=20, startup_delay=20)
        monitor.run(220)
        continuity = monitor.continuity_summary()
        assert continuity
        assert all(value == 1.0 for value in continuity.values())

    def test_impossible_deadlines_stall(self):
        monitor, _ = make_monitor(window=1, startup_delay=0)
        monitor.run(120)
        continuity = monitor.continuity_summary()
        assert any(value < 1.0 for value in continuity.values())

    def test_report_fields(self):
        monitor, net = make_monitor(window=10, startup_delay=10)
        monitor.run(180)
        node = net.matrix.node_ids[0]
        report = monitor.report(node)
        assert report is not None
        assert report.windows == monitor.sim.generation_count
        assert 0 <= report.stalls <= report.windows
        assert report.continuity == pytest.approx(
            1.0 - report.stalls / report.windows
        )

    def test_unheard_node_reports_none(self):
        monitor, net = make_monitor()
        # no slots run yet: nobody has heard anything
        assert monitor.report(net.matrix.node_ids[0]) is None

    def test_startup_delay_trades_stalls(self):
        """More client buffering strictly reduces stalls."""
        short, _ = make_monitor(window=4, startup_delay=0, seed=9)
        long, _ = make_monitor(window=4, startup_delay=30, seed=9)
        short.run(200)
        long.run(200)
        short_stalls = sum(
            short.report(n).stalls for n in short.continuity_summary()
        )
        long_stalls = sum(
            long.report(n).stalls for n in long.continuity_summary()
        )
        assert long_stalls <= short_stalls

    def test_loss_hurts_continuity(self):
        clean, _ = make_monitor(window=4, startup_delay=6, seed=11)
        lossy, _ = make_monitor(window=4, startup_delay=6, loss=0.2, seed=11)
        clean.run(200)
        lossy.run(200)
        clean_mean = np.mean(list(clean.continuity_summary().values()))
        lossy_mean = np.mean(list(lossy.continuity_summary().values()))
        assert lossy_mean <= clean_mean

    def test_validation(self):
        with pytest.raises(ValueError):
            make_monitor(window=0)
        with pytest.raises(ValueError):
            make_monitor(startup_delay=-1)
