"""Round-trip tests for the control-plane binary codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.control import (
    ControlFormatError,
    DataHello,
    PeerLocator,
    SessionInfo,
    decode_control,
    encode_control,
)
from repro.protocol.messages import (
    AttachChild,
    ComplaintMsg,
    CongestionDrop,
    CongestionRestore,
    DetachChild,
    JoinGrant,
    JoinRequest,
    KeepAlive,
    LeaveRequest,
    Probe,
    ProbeAck,
    SetParent,
    ThreadRemoved,
)

SAMPLES = [
    JoinRequest(reply_to=40301),
    LeaveRequest(node_id=17),
    AttachChild(column=3, child=9),
    DetachChild(column=0),
    SetParent(column=65535, parent=-1),
    KeepAlive(column=2, sender=-1),
    CongestionDrop(node_id=4),
    CongestionRestore(node_id=4),
    ThreadRemoved(column=11),
    ComplaintMsg(reporter=5, column=1, suspect=2),
    Probe(nonce=2**40),
    ProbeAck(node_id=3, nonce=2**40),
    JoinGrant(node_id=7, assignments=((0, -1), (3, 2))),
    JoinGrant(node_id=0, assignments=()),
    SessionInfo(generation_size=16, payload_size=1024, generation_count=40,
                content_length=640_000, k=32, d=3),
    PeerLocator(node_id=12, host="127.0.0.1", port=40301),
    PeerLocator(node_id=1, host="2001:db8::1", port=1),
    DataHello(node_id=8, column=5),
]


class TestRoundtrip:
    @pytest.mark.parametrize("message", SAMPLES, ids=lambda m: type(m).__name__)
    def test_roundtrip(self, message):
        assert decode_control(encode_control(message)) == message

    @settings(max_examples=50, deadline=None)
    @given(
        node_id=st.integers(min_value=0, max_value=2**31 - 1),
        assignments=st.lists(
            st.tuples(st.integers(min_value=0, max_value=65535),
                      st.integers(min_value=-1, max_value=2**31 - 1)),
            max_size=16,
        ),
    )
    def test_grant_roundtrip(self, node_id, assignments):
        grant = JoinGrant(node_id=node_id, assignments=tuple(assignments))
        assert decode_control(encode_control(grant)) == grant

    @settings(max_examples=50, deadline=None)
    @given(
        node_id=st.integers(min_value=-1, max_value=2**31 - 1),
        host=st.text(min_size=1, max_size=60),
        port=st.integers(min_value=0, max_value=65535),
    )
    def test_locator_roundtrip(self, node_id, host, port):
        locator = PeerLocator(node_id=node_id, host=host, port=port)
        assert decode_control(encode_control(locator)) == locator

    def test_nominal_size_not_serialised(self):
        """The sim's byte-accounting field decodes back to its default."""
        frame = encode_control(JoinRequest(reply_to=1, size=999))
        assert decode_control(frame).size == JoinRequest(reply_to=1).size


class TestErrors:
    def test_empty_frame(self):
        with pytest.raises(ControlFormatError):
            decode_control(b"")

    def test_unknown_type_byte(self):
        with pytest.raises(ControlFormatError):
            decode_control(b"\xfe\x00\x00")

    def test_truncated_body(self):
        frame = encode_control(SetParent(column=1, parent=2))
        with pytest.raises(ControlFormatError):
            decode_control(frame[:-1])

    def test_trailing_garbage(self):
        frame = encode_control(LeaveRequest(node_id=1))
        with pytest.raises(ControlFormatError):
            decode_control(frame + b"\x00")

    def test_grant_count_mismatch(self):
        frame = bytearray(encode_control(JoinGrant(node_id=1,
                                                   assignments=((0, 1),))))
        frame[5:7] = (2).to_bytes(2, "big")  # claim two assignments
        with pytest.raises(ControlFormatError):
            decode_control(bytes(frame))

    def test_oversized_host_rejected(self):
        with pytest.raises(ControlFormatError):
            encode_control(PeerLocator(node_id=1, host="x" * 300, port=1))

    def test_unregistered_message_rejected(self):
        with pytest.raises(ControlFormatError):
            encode_control(object())

    @settings(max_examples=150, deadline=None)
    @given(frame=st.binary(min_size=0, max_size=80))
    def test_random_bytes_never_crash(self, frame):
        """Arbitrary bytes either decode or raise ControlFormatError."""
        try:
            message = decode_control(frame)
        except ControlFormatError:
            return
        assert encode_control(message) == frame
