"""Unit tests for the peer's reconnect backoff schedule."""

import pytest

from repro.net import ReconnectBackoff


class TestReconnectBackoff:
    def test_doubles_until_capped(self):
        backoff = ReconnectBackoff(0.05, 0.8)
        taken = [backoff.next() for _ in range(7)]
        assert taken == pytest.approx([0.05, 0.1, 0.2, 0.4, 0.8, 0.8, 0.8])

    def test_schedule_matches_next_sequence(self):
        backoff = ReconnectBackoff(0.05, 0.8)
        planned = backoff.schedule(7)
        taken = [backoff.next() for _ in range(7)]
        assert planned == taken

    def test_schedule_does_not_mutate_state(self):
        backoff = ReconnectBackoff(0.1, 2.0)
        backoff.schedule(10)
        assert backoff.current == 0.1

    def test_reset_restores_base(self):
        backoff = ReconnectBackoff(0.1, 2.0)
        for _ in range(5):
            backoff.next()
        assert backoff.current == 2.0
        backoff.reset()
        assert backoff.current == 0.1
        assert backoff.next() == 0.1

    def test_current_peeks_without_consuming(self):
        backoff = ReconnectBackoff(0.25, 4.0)
        assert backoff.current == 0.25
        assert backoff.current == 0.25
        assert backoff.next() == 0.25
        assert backoff.current == 0.5

    def test_base_equal_to_maximum_is_flat(self):
        backoff = ReconnectBackoff(1.0, 1.0)
        assert backoff.schedule(3) == [1.0, 1.0, 1.0]

    @pytest.mark.parametrize("base", [0.0, -0.5])
    def test_nonpositive_base_rejected(self, base):
        with pytest.raises(ValueError, match="base"):
            ReconnectBackoff(base, 1.0)

    def test_maximum_below_base_rejected(self):
        with pytest.raises(ValueError, match="maximum"):
            ReconnectBackoff(0.5, 0.1)

    def test_cap_is_exact_not_overshot(self):
        """Doubling clamps to the cap even when 2x would overshoot it."""
        backoff = ReconnectBackoff(0.3, 1.0)
        assert backoff.schedule(4) == pytest.approx([0.3, 0.6, 1.0, 1.0])
