"""Unit tests for the coordination server protocols."""

import pytest

from repro.core import SERVER, CoordinationServer, NodeStatus


@pytest.fixture
def server(rng):
    return CoordinationServer(k=8, d=2, rng=rng)


class TestHello:
    def test_grant_contents(self, server):
        grant = server.hello()
        assert grant.node_id == 0
        assert len(grant.assignments) == 2
        # first joiner's parents are the server on every thread
        assert all(a.parent == SERVER for a in grant.assignments)
        assert grant.redirects == ()

    def test_ids_are_sequential(self, server):
        ids = [server.hello().node_id for _ in range(5)]
        assert ids == [0, 1, 2, 3, 4]

    def test_parents_are_hanging_owners(self, server):
        first = server.hello(columns=[0, 1])
        second = server.hello(columns=[1, 2])
        by_column = {a.column: a.parent for a in second.assignments}
        assert by_column[1] == first.node_id
        assert by_column[2] == SERVER

    def test_heterogeneous_degree(self, server):
        grant = server.hello(d=4)
        assert len(grant.assignments) == 4
        assert server.registry[grant.node_id].nominal_degree == 4

    def test_invalid_parameters(self, rng):
        with pytest.raises(ValueError):
            CoordinationServer(k=4, d=5, rng=rng)
        with pytest.raises(ValueError):
            CoordinationServer(k=4, d=2, rng=rng, insert_mode="bogus")

    def test_append_mode_never_redirects(self, server):
        for _ in range(30):
            assert server.hello().redirects == ()

    def test_uniform_mode_redirects_displaced_children(self, rng):
        server = CoordinationServer(k=4, d=2, rng=rng, insert_mode="uniform")
        redirects = []
        for _ in range(40):
            redirects.extend(server.hello().redirects)
        assert redirects, "40 uniform inserts should displace someone"
        for redirect in redirects:
            assert redirect.child is not None


class TestGoodbye:
    def test_goodbye_redirects_each_thread(self, server):
        a = server.hello(columns=[0, 1]).node_id
        b = server.hello(columns=[0, 1]).node_id
        redirects = server.goodbye(a)
        assert len(redirects) == 2
        for redirect in redirects:
            assert redirect.parent == SERVER
            assert redirect.child == b
        assert a not in server.registry
        assert server.population == 1

    def test_goodbye_hanging_child_is_none(self, server):
        node = server.hello().node_id
        redirects = server.goodbye(node)
        assert all(r.child is None for r in redirects)

    def test_goodbye_failed_node_raises(self, server):
        node = server.hello().node_id
        server.fail(node)
        with pytest.raises(ValueError):
            server.goodbye(node)


class TestFailureAndRepair:
    def test_fail_marks_but_keeps_row(self, server):
        node = server.hello().node_id
        server.fail(node)
        assert node in server.failed
        assert server.population == 1
        assert server.registry[node].status is NodeStatus.FAILED
        assert not server.is_working(node)

    def test_fail_unknown_raises(self, server):
        with pytest.raises(KeyError):
            server.fail(404)

    def test_fail_idempotent(self, server):
        node = server.hello().node_id
        server.fail(node)
        server.fail(node)
        assert node in server.failed

    def test_repair_splices_and_clears(self, server):
        a = server.hello(columns=[0, 1]).node_id
        b = server.hello(columns=[0, 1]).node_id
        server.fail(a)
        redirects = server.repair(a)
        assert len(redirects) == 2
        assert a not in server.failed
        assert server.matrix.parents_of(b) == {0: SERVER, 1: SERVER}

    def test_repair_working_node_raises(self, server):
        node = server.hello().node_id
        with pytest.raises(ValueError):
            server.repair(node)

    def test_repair_all(self, server):
        nodes = [server.hello().node_id for _ in range(5)]
        for node in nodes[:3]:
            server.fail(node)
        server.repair_all()
        assert not server.failed
        assert server.population == 2

    def test_complaint_against_failed_parent(self, server):
        a = server.hello(columns=[0, 1]).node_id
        b = server.hello(columns=[0, 2]).node_id
        server.fail(a)
        complaint = server.complain(b, 0)
        assert complaint is not None
        assert complaint.suspect == a

    def test_spurious_complaint_returns_none(self, server):
        server.hello(columns=[0, 1])
        b = server.hello(columns=[0, 2]).node_id
        assert server.complain(b, 0) is None  # parent is healthy
        assert server.complain(b, 2) is None  # parent is the server


class TestCongestionNegotiation:
    def test_drop_and_restore(self, server):
        node = server.hello().node_id
        column = server.congestion_drop(node)
        assert column not in server.matrix.columns_of(node)
        assert server.registry[node].status is NodeStatus.CONGESTED
        server.congestion_restore(node)
        assert server.matrix.row(node).degree == 2
        assert server.registry[node].status is NodeStatus.WORKING

    def test_failed_node_cannot_negotiate(self, server):
        node = server.hello().node_id
        server.fail(node)
        with pytest.raises(ValueError):
            server.congestion_drop(node)
        with pytest.raises(ValueError):
            server.congestion_restore(node)


class TestMessageAccounting:
    def test_hello_counts(self, server):
        server.hello()
        snap = server.stats.snapshot()
        assert snap["hello_requests"] == 1
        assert snap["hello_grants"] == 1

    def test_repair_cost_is_order_d(self, server):
        """The paper's efficiency claim: O(d) redirects per repair."""
        for _ in range(10):
            server.hello()
        before = server.stats.redirects
        victim = 5
        server.fail(victim)
        server.repair(victim)
        assert victim not in server.registry
        assert server.stats.redirects - before == 2  # exactly d redirects

    def test_total_is_sum(self, server):
        server.hello()
        server.goodbye(0)
        stats = server.stats
        assert stats.total() == (
            stats.hello_requests + stats.hello_grants + stats.goodbye_requests
            + stats.complaints + stats.redirects + stats.congestion_notices
        )
