"""Unit tests for the closed-form Theorem 4/5 predictions."""


import pytest

from repro.theory import (
    collapse_exponent,
    collapse_probability_bound,
    expected_bandwidth_loss_fraction,
    lemma6_max_jump_fraction,
    theorem4_prediction,
    unicast_capacity,
)


class TestTheorem4Prediction:
    def test_zero_p(self):
        prediction = theorem4_prediction(64, 2, 0.0)
        assert prediction.naive == 0.0
        assert prediction.attractor == 0.0
        assert prediction.with_epsilon == 0.0

    def test_ordering(self):
        prediction = theorem4_prediction(64, 2, 0.01)
        assert prediction.naive == pytest.approx(0.02)
        assert prediction.attractor > prediction.naive
        assert prediction.with_epsilon > prediction.naive

    def test_attractor_shrinks_with_k(self):
        tight = theorem4_prediction(256, 2, 0.01).attractor
        loose = theorem4_prediction(16, 2, 0.01).attractor
        assert tight < loose


class TestScalingHelpers:
    def test_collapse_exponent(self):
        assert collapse_exponent(64, 2) == pytest.approx(8.0)
        assert collapse_exponent(27, 3) == pytest.approx(1.0)

    def test_collapse_probability_monotone_in_steps(self):
        a = collapse_probability_bound(10, 32, 2, xi1=1.0, xi2=1.0)
        b = collapse_probability_bound(100, 32, 2, xi1=1.0, xi2=1.0)
        assert a <= b <= 1.0

    def test_collapse_probability_decays_with_k(self):
        small_k = collapse_probability_bound(1000, 16, 2, xi1=1.0, xi2=1.0)
        large_k = collapse_probability_bound(1000, 64, 2, xi1=1.0, xi2=1.0)
        assert large_k < small_k

    def test_lemma6_fraction(self):
        assert lemma6_max_jump_fraction(64, 2) == pytest.approx(4 / 64)

    def test_unicast_capacity(self):
        assert unicast_capacity(64, 2) == 32
        assert unicast_capacity(10, 3) == 3

    def test_expected_loss_fraction_is_p(self):
        """§7: the expected fraction of bandwidth lost ≈ p for all d."""
        assert expected_bandwidth_loss_fraction(0.03) == 0.03
