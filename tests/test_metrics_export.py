"""Table export round-trips and the shared summary-statistics module."""

import csv
import io
import json
import warnings

import pytest

from repro.metrics import Series, save_table, stats, to_csv, to_json


class TestCsvRoundTrip:
    def test_values_survive_a_csv_round_trip(self):
        headers = ["name", "value", "note"]
        rows = [["a", 1, "plain"], ["b", 2.5, None]]
        parsed = list(csv.reader(io.StringIO(to_csv(headers, rows))))
        assert parsed[0] == headers
        assert parsed[1] == ["a", "1", "plain"]
        assert parsed[2] == ["b", "2.5", ""]

    def test_cells_with_commas_quotes_newlines_are_escaped(self):
        headers = ["k", "v"]
        rows = [
            ["comma", "a,b"],
            ["quote", 'say "hi"'],
            ["newline", "line1\nline2"],
        ]
        parsed = list(csv.reader(io.StringIO(to_csv(headers, rows))))
        assert parsed[1] == ["comma", "a,b"]
        assert parsed[2] == ["quote", 'say "hi"']
        assert parsed[3] == ["newline", "line1\nline2"]

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ValueError, match="row width"):
            to_csv(["a"], [[1, 2]])


class TestJsonRoundTrip:
    def test_values_and_types_survive(self):
        headers = ["name", "count", "ratio", "missing"]
        rows = [["x", 3, 0.5, None]]
        records = json.loads(to_json(headers, rows))
        assert records == [
            {"name": "x", "count": 3, "ratio": 0.5, "missing": None}
        ]

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ValueError, match="row width"):
            to_json(["a", "b"], [[1]])

    def test_save_table_picks_format_by_suffix(self, tmp_path):
        headers, rows = ["a", "b"], [[1, "x,y"]]
        csv_path = tmp_path / "t.csv"
        json_path = tmp_path / "t.json"
        save_table(csv_path, headers, rows)
        save_table(json_path, headers, rows)
        assert list(csv.reader(io.StringIO(csv_path.read_text())))[1] == ["1", "x,y"]
        assert json.loads(json_path.read_text()) == [{"a": 1, "b": "x,y"}]


class TestSharedStats:
    def test_empty_inputs_yield_defined_values_without_warnings(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # numpy's empty-mean warns
            assert stats.mean([]) == 0.0
            assert stats.std([]) == 0.0
            assert stats.std([4.0]) == 0.0
            assert stats.minimum([]) == 0.0
            assert stats.maximum([]) == 0.0
            assert stats.percentile([], 95) == 0.0
            assert stats.summary([]) == {
                "mean": 0.0, "std": 0.0, "min": 0.0, "max": 0.0, "n": 0.0,
            }

    def test_percentile_bounds_checked(self):
        with pytest.raises(ValueError, match="percentile"):
            stats.percentile([1.0], 101)

    def test_summary_matches_hand_computation(self):
        values = [1.0, 2.0, 3.0, 4.0]
        result = stats.summary(values)
        assert result["mean"] == pytest.approx(2.5)
        assert result["min"] == 1.0
        assert result["max"] == 4.0
        assert result["n"] == 4.0
        assert stats.percentile(values, 50) == pytest.approx(2.5)


class TestSeriesDelegation:
    def test_series_percentile(self):
        series = Series("s")
        for i in range(11):
            series.add(float(i), float(i))
        assert series.percentile(50) == pytest.approx(5.0)
        assert series.percentile(100) == 10.0

    def test_empty_series_is_all_zero_without_warnings(self):
        series = Series("s")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert series.mean() == 0.0
            assert series.std() == 0.0
            assert series.min() == 0.0
            assert series.max() == 0.0
            assert series.percentile(99) == 0.0
        assert series.last() is None

    def test_summary_method_matches_module(self):
        series = Series("s")
        series.add(0.0, 2.0)
        series.add(1.0, 4.0)
        assert series.summary() == stats.summary([2.0, 4.0])


class TestReportEdgeCases:
    def test_flooding_report_tolerates_zero_needed(self):
        from repro.sim.links import LinkStats
        from repro.sim.report import FloodingReport, NodeReport, RunReport

        run = RunReport(
            slots=5,
            nodes=[NodeReport(node_id=1, rank=0, needed=0, completed_at=0,
                              received=0, innovative=0, decoded_ok=None)],
            link_stats=LinkStats(),
            server_packets=0,
        )
        report = FloodingReport.from_run(run)
        assert report.mean_unique_fraction == 1.0

    def test_empty_run_percentiles_are_zero(self):
        from repro.sim.report import completion_percentile, mean_completion_slot

        assert mean_completion_slot([]) == 0.0
        assert completion_percentile([], 95) == 0.0
