"""Theorem-level validations: each test checks one claim of the paper
directly against the implementation (small-scale versions of the E1–E12
benchmark experiments).
"""


import numpy as np
import pytest

from repro.analysis import exact_defect, ks_same_distribution, sampled_defect
from repro.coding import GenerationParams
from repro.core import OverlayNetwork, RandomGraphOverlay, sequential_arrivals
from repro.failures import CohortBatchFailures, RandomBatchFailures, apply_failures
from repro.sim import BroadcastSimulation
from repro.theory import lemma6_max_jump_fraction, theorem4_prediction


class TestLemma1LeaveInvariance:
    """Graceful leaves preserve the distribution of M."""

    @staticmethod
    def _column_load_histogram(samples, k, d, churned):
        """Distribution of per-column occupancy counts over many runs."""
        loads = []
        for seed in range(samples):
            net = OverlayNetwork(k=k, d=d, seed=seed)
            if churned:
                net.grow(30)
                # leave 10 random nodes gracefully
                for _ in range(10):
                    net.leave(net.random_working_node())
            else:
                net.grow(20)
            loads.extend(len(net.matrix.column_chain(c)) for c in range(k))
        return loads

    def test_column_loads_match(self):
        """20 direct joins vs 30 joins + 10 graceful leaves: same law."""
        direct = self._column_load_histogram(60, k=8, d=2, churned=False)
        churned = self._column_load_histogram(60, k=8, d=2, churned=True)
        _, p_value = ks_same_distribution(direct, churned)
        assert p_value > 0.01

    def test_connectivity_unharmed_by_leaves(self):
        net = OverlayNetwork(k=10, d=2, seed=3)
        net.grow(60)
        for _ in range(25):
            net.leave(net.random_working_node())
        assert all(c == 2 for c in net.connectivities().values())


class TestTheorem4DefectBound:
    """Steady-state defect stays ≲ (1+ε)pd; failures are locally contained."""

    def test_defect_tracks_pd(self):
        k, d, p = 20, 2, 0.02
        net = OverlayNetwork(k=k, d=d, seed=5)
        rng = np.random.default_rng(6)
        sequential_arrivals(net, 400, p=p, rng=rng, repair_interval=None)
        summary = sampled_defect(net.matrix, d, rng, samples=600, failed=net.failed)
        prediction = theorem4_prediction(k, d, p)
        # measured mean defect must not exceed the drift attractor by much
        assert summary.mean_defect <= 2.0 * max(prediction.attractor, p * d)

    def test_defect_flat_in_population(self):
        """The loss probability must NOT grow with N (the headline claim)."""
        k, d, p = 20, 2, 0.02
        rng = np.random.default_rng(7)
        levels = []
        for count in (200, 400, 800):
            net = OverlayNetwork(k=k, d=d, seed=8)
            sequential_arrivals(net, count, p=p, rng=np.random.default_rng(9),
                                repair_interval=None)
            summary = sampled_defect(net.matrix, d, rng, samples=500,
                                     failed=net.failed)
            levels.append(summary.mean_defect)
        assert max(levels) <= 0.12  # all small
        # no growth trend: the largest network is not much worse than the smallest
        assert levels[-1] <= levels[0] + 0.08

    def test_failure_impact_is_local(self):
        """Only children of a failed node lose connectivity — grandchildren
        and unrelated nodes keep full d (with overwhelming probability in a
        healthy net)."""
        net = OverlayNetwork(k=24, d=3, seed=10)
        net.grow(150)
        victim = net.matrix.node_ids[40]
        children = {
            c for c in net.matrix.children_of(victim).values() if c is not None
        }
        net.fail(victim)
        connectivities = net.connectivities()
        harmed = {n for n, c in connectivities.items() if 0 < c < 3}
        assert harmed <= children
        assert all(c == 3 for n, c in connectivities.items()
                   if n not in children and n != victim)


class TestLemma6JumpBound:
    """One arrival changes B by at most (d²/k)·A — verified exactly."""

    def test_exact_jump_bound_over_arrival_sequence(self):
        k, d = 8, 2
        net = OverlayNetwork(k=k, d=d, seed=11)
        rng = np.random.default_rng(12)
        bound = lemma6_max_jump_fraction(k, d)
        previous = exact_defect(net.matrix, d).mean_defect / d  # == 0
        for step in range(40):
            grant = net.join()
            if rng.random() < 0.3:
                net.fail(grant.node_id)
            summary = exact_defect(net.matrix, d, net.failed)
            current = summary.mean_defect  # == B/A
            assert abs(current - previous) <= bound + 1e-9
            previous = current

    def test_bound_attained_by_first_failure(self):
        """The paper notes the bound is attained by an initial failed node."""
        k, d = 8, 2
        net = OverlayNetwork(k=k, d=d, seed=13)
        grant = net.join()
        net.fail(grant.node_id)
        summary = exact_defect(net.matrix, d, net.failed)
        jump = summary.mean_defect
        assert jump == pytest.approx(lemma6_max_jump_fraction(k, d), rel=1e-9)


class TestSection5Adversaries:
    """Random-subset batch failures ≈ iid; arrival-coordinated cohorts are
    defused by uniform row insertion."""

    @staticmethod
    def _connectivity_losses(insert_mode, model, seed):
        net = OverlayNetwork(k=16, d=2, seed=seed, insert_mode=insert_mode)
        net.grow(200)
        apply_failures(net, model, np.random.default_rng(seed + 1))
        survivors = net.working_nodes
        connectivities = net.connectivities(survivors)
        return [2 - connectivities[n] for n in survivors]

    def test_random_batch_equals_cohort_under_uniform_insertion(self):
        """With §5 random insertion, a coordinated cohort looks random."""
        cohort_losses, random_losses = [], []
        for seed in range(8):
            cohort_losses.extend(
                self._connectivity_losses("uniform", CohortBatchFailures(0.15), seed)
            )
            random_losses.extend(
                self._connectivity_losses("uniform", RandomBatchFailures(0.15),
                                          seed + 100)
            )
        assert np.mean(cohort_losses) <= np.mean(random_losses) + 0.05

    def test_mean_loss_close_to_pd_per_thread(self):
        """Batch failing fraction p: survivors lose ≈ p per thread."""
        losses = []
        for seed in range(6):
            losses.extend(
                self._connectivity_losses("append", RandomBatchFailures(0.1), seed)
            )
        mean_loss_fraction = np.mean(losses) / 2  # per-thread loss
        assert 0.05 <= mean_loss_fraction <= 0.2  # ≈ p = 0.1


class TestSection6Delay:
    """Curtain delay is linear in N; random-graph delay is logarithmic."""

    def test_curtain_depth_linear(self):
        depths = {}
        for count in (150, 300, 600):
            net = OverlayNetwork(k=12, d=3, seed=15)
            net.grow(count)
            depths[count] = max(net.graph().depths_from_server().values())
        # doubling N roughly doubles the max depth
        assert depths[300] >= 1.5 * depths[150]
        assert depths[600] >= 1.5 * depths[300]

    def test_random_graph_depth_logarithmic(self):
        depths = {}
        for count in (150, 300, 600):
            overlay = RandomGraphOverlay(k=12, d=3, seed=16)
            overlay.grow(count)
            depths[count] = max(overlay.depths_from_server().values())
        # doubling N adds only a constant-ish number of hops
        assert depths[600] - depths[300] <= 6
        assert depths[600] < 0.2 * 600

    def test_curtain_remains_acyclic_random_graph_does_not(self):
        net = OverlayNetwork(k=12, d=3, seed=17)
        net.grow(200)
        assert net.graph().is_acyclic()
        overlay = RandomGraphOverlay(k=12, d=3, seed=18)
        overlay.grow(200)
        assert not overlay.is_acyclic()


class TestNetworkCodingAchievesConnectivity:
    """Ahlswede et al. applied: RLNC goodput ≈ min-cut connectivity."""

    def test_full_rate_without_failures(self):
        net = OverlayNetwork(k=10, d=2, seed=19)
        net.grow(20)
        rng = np.random.default_rng(20)
        generation_size = 10
        content = bytes(rng.integers(0, 256, size=generation_size * 64,
                                     dtype=np.uint8))
        sim = BroadcastSimulation(
            net, content,
            GenerationParams(generation_size=generation_size, payload_size=64),
            seed=21,
        )
        report = sim.run_until_complete(max_slots=600)
        depths = net.graph().depths_from_server()
        for node in report.nodes:
            # a node with connectivity d=2 should need about g/d slots of
            # useful traffic after its pipeline fills: completion by
            # depth + g/d + small slack
            budget = depths[node.node_id] + generation_size / 2 + 6
            assert node.completed_at is not None
            assert node.completed_at <= budget

    def test_rate_halves_when_connectivity_halves(self):
        """A node with one failed parent (connectivity 1) accumulates rank
        at roughly half speed."""
        net = OverlayNetwork(k=10, d=2, seed=22)
        net.grow(12)
        # pick a bottom node, fail the parent carrying one of its threads
        victim_child = net.matrix.node_ids[-1]
        parents = [
            p for p in net.matrix.parents_of(victim_child).values() if p != -1
        ]
        if not parents:
            pytest.skip("bottom node hangs straight off the rod")
        net.fail(parents[0])
        remaining = net.connectivity(victim_child)
        rng = np.random.default_rng(23)
        content = bytes(rng.integers(0, 256, size=16 * 32, dtype=np.uint8))
        sim = BroadcastSimulation(
            net, content, GenerationParams(generation_size=16, payload_size=32),
            seed=24,
        )
        sim.run(12)
        rank = sim.recoder_of(victim_child).decoder.total_rank
        # rank growth per slot ≈ connectivity (after pipeline fill)
        assert rank <= remaining * 12 + 1
        if remaining > 0:
            assert rank >= remaining * 4  # clearly nonzero rate


class TestSection7DSweep:
    """Expected *fraction* of bandwidth lost ≈ p for every d."""

    def test_fraction_lost_independent_of_d(self):
        p = 0.08
        fractions = {}
        for d in (2, 4):
            net = OverlayNetwork(k=8 * d, d=d, seed=25)
            net.grow(150)
            apply_failures(net, RandomBatchFailures(p), np.random.default_rng(26))
            survivors = net.working_nodes
            connectivities = net.connectivities(survivors)
            fractions[d] = float(
                np.mean([(d - connectivities[n]) / d for n in survivors])
            )
        for d, fraction in fractions.items():
            assert fraction == pytest.approx(p, abs=0.06)
        assert abs(fractions[2] - fractions[4]) < 0.05
