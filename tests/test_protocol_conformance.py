"""Cross-driver conformance: one protocol core, identical effect traces.

The same §3 scenario — three sequential joins, a graceful leave, then a
slow-path failure (silence → complaint → probe → timeout → splice) — is
scripted against two entirely different drivers:

* the message-level discrete-event simulator
  (:mod:`repro.protocol_sim`), and
* the live transport code on the in-memory virtual network
  (:mod:`repro.net` + :mod:`repro.net.testing`),

with an :class:`~repro.protocol.EngineLog` attached to each server
engine.  Both must produce the *same flattened effect trace*: events
that differ between transports (duplicate complaints, per-transport
timer cadence) produce zero effects and vanish from the flat trace.

The trace is also pinned against a golden file, as are the chaos-tier
``trace_digest`` values at seeds 0 and 7 — the wire-level regression
net for the whole control plane.
"""

import json
from pathlib import Path

import pytest

from repro.net.testing.scenarios import SCENARIOS, run_scenario_sync, trace_digest
from repro.protocol import Clip, ComplaintMsg, EngineLog, Send

GOLDENS = Path(__file__).parent / "goldens"

#: Geometry for the cross-driver script: k == d makes thread
#: assignments independent of the rng stream, so both drivers see the
#: same grants no matter how their transports interleave draws.
K = D = 2
PEERS = 3
PROBE_TIMEOUT = 0.5


def run_simulator_script():
    """The script on the message-level simulator; returns both logs."""
    from repro.protocol_sim import ProtocolConfig, ProtocolSimulation

    sim = ProtocolSimulation(ProtocolConfig(
        k=K, d=D, seed=0, jitter=0.0, message_loss=0.0,
        keepalive_interval=0.2, silence_timeout=0.5,
        probe_timeout=PROBE_TIMEOUT,
    ))
    sim.server.engine.log = EngineLog()
    sim.grow(PEERS, settle=1.0)
    observer = sim.peers[2]
    observer.engine.log = EngineLog()
    sim.leave(1)
    # The leaver shuts down after its good-bye, as a real peer would
    # (the net driver's ``leave()`` closes every transport).
    sim.peers[1].crash()
    sim.run(1.0)
    sim.crash(0)
    sim.run(5.0)
    return sim.server.engine.log, observer.engine.log


def run_virtualnet_script():
    """The same script on the live transport over the virtual network."""
    import asyncio

    from repro.net.testing.scenarios import ChaosConfig, ChaosHarness

    async def script():
        harness = ChaosHarness(ChaosConfig(
            peers=PEERS, k=K, d=D, seed=0,
            silence_timeout=0.5, probe_timeout=PROBE_TIMEOUT,
        ))
        try:
            await harness.start(peers=0)
            harness.server.engine.log = EngineLog()
            for _ in range(PEERS):
                await harness.add_peer()
            observer = harness.peers[2]
            observer.engine.log = EngineLog()
            await harness.leave(1)
            await harness.settle(1.0)
            harness.isolate(0)
            await harness.run_until(
                lambda: harness.server.stats.repairs >= 1, timeout=20.0)
            await harness.settle(1.0)
            # Snapshot before teardown: closing connections feeds the
            # engines teardown noise that is not part of the script.
            return (
                EngineLog(events=list(harness.server.engine.log.events),
                          steps=list(harness.server.engine.log.steps)),
                EngineLog(events=list(observer.engine.log.events),
                          steps=list(observer.engine.log.steps)),
            )
        finally:
            await harness.teardown()

    return asyncio.run(script())


@pytest.fixture(scope="module")
def traces():
    sim_server, sim_peer = run_simulator_script()
    net_server, net_peer = run_virtualnet_script()
    return sim_server, sim_peer, net_server, net_peer


class TestCrossDriverConformance:
    def test_server_effect_traces_identical(self, traces):
        sim_server, _, net_server, _ = traces
        assert sim_server.effect_reprs() == net_server.effect_reprs()

    def test_server_effect_trace_matches_golden(self, traces):
        sim_server, _, _, _ = traces
        golden = json.loads(
            (GOLDENS / "protocol_effects.json").read_text())
        assert sim_server.effect_reprs() == golden["server_effects"]

    def test_observer_clips_identical(self, traces):
        """The surviving child re-clips through the same sequence on
        both drivers: splice-to-grandparent on the leave, then
        repair-to-server after the crash (the log attaches after the
        grant, so admission clips are not recorded)."""
        _, sim_peer, _, net_peer = traces
        clips = lambda log: [  # noqa: E731
            e for e in log.effect_trace() if isinstance(e, Clip)]
        assert clips(sim_peer) == clips(net_peer)
        assert clips(sim_peer), "observer never clipped a thread"

    def test_observer_complaints_identical(self, traces):
        """Both drivers complain about the same suspect on the same
        columns (order may differ: the net driver's threads race)."""
        _, sim_peer, _, net_peer = traces
        complaints = lambda log: {  # noqa: E731
            e.message for e in log.effect_trace()
            if isinstance(e, Send) and isinstance(e.message, ComplaintMsg)}
        assert complaints(sim_peer) == complaints(net_peer)
        assert complaints(sim_peer), "observer never complained"


class TestChaosDigestGoldens:
    """The wire-level regression net: refactors of the control plane
    must not move a single byte on the virtual network."""

    #: Fast tier-1 subset; the slow test sweeps the full catalogue.
    SUBSET = [
        "baseline",
        "graceful_leave_reclip",
        "crash_parent_midstream",
        "uniform_adversarial_joins",
    ]

    @pytest.fixture(scope="class")
    def goldens(self):
        return json.loads((GOLDENS / "chaos_digests.json").read_text())

    @pytest.mark.parametrize("name", SUBSET)
    @pytest.mark.parametrize("seed", [0, 7])
    def test_digest_unchanged(self, name, seed, goldens):
        result = run_scenario_sync(name, seed=seed)
        assert trace_digest(result.trace) == goldens[f"{name}@{seed}"]

    @pytest.mark.slow
    def test_all_digests_unchanged(self, goldens):
        mismatches = {}
        for name in sorted(SCENARIOS):
            for seed in (0, 7):
                result = run_scenario_sync(name, seed=seed)
                digest = trace_digest(result.trace)
                if digest != goldens[f"{name}@{seed}"]:
                    mismatches[f"{name}@{seed}"] = digest
        assert not mismatches, mismatches
