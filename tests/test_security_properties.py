"""Property-based tests for Z_q arithmetic and the hash homomorphism."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.security import HomomorphicHasher, generate_params
from repro.security.modmath import (
    Q,
    add_mod,
    bytes_to_symbols,
    inv_mod,
    mul_mod,
    rank_mod,
    rref_mod,
    symbols_to_bytes,
)

elements = st.integers(min_value=0, max_value=Q - 1)
nonzero = st.integers(min_value=1, max_value=Q - 1)


class TestFieldAxioms:
    @given(elements, elements, elements)
    def test_distributivity(self, a, b, c):
        left = mul_mod(a, add_mod(b, c))
        right = add_mod(mul_mod(a, b), mul_mod(a, c))
        assert int(left) == int(right)

    @given(nonzero)
    def test_inverse(self, a):
        assert (a * inv_mod(a)) % Q == 1

    @given(elements, elements)
    def test_commutativity(self, a, b):
        assert int(mul_mod(a, b)) == int(mul_mod(b, a))
        assert int(add_mod(a, b)) == int(add_mod(b, a))


class TestPackingProperties:
    @settings(max_examples=50)
    @given(data=st.binary(min_size=0, max_size=300),
           symbols=st.integers(min_value=1, max_value=12))
    def test_roundtrip_any_content(self, data, symbols):
        packed = bytes_to_symbols(data, symbols)
        assert symbols_to_bytes(packed, len(data)) == data


class TestLinalgProperties:
    @settings(max_examples=30)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1),
           rows=st.integers(min_value=1, max_value=6),
           cols=st.integers(min_value=1, max_value=6))
    def test_rref_idempotent(self, seed, rows, cols):
        rng = np.random.default_rng(seed)
        a = rng.integers(0, Q, size=(rows, cols))
        reduced, pivots = rref_mod(a)
        again, pivots2 = rref_mod(reduced)
        assert np.array_equal(reduced, again)
        assert pivots == pivots2

    @settings(max_examples=30)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1),
           rows=st.integers(min_value=1, max_value=5))
    def test_rank_bounds(self, seed, rows):
        rng = np.random.default_rng(seed)
        a = rng.integers(0, Q, size=(rows, 4))
        assert 0 <= rank_mod(a) <= min(rows, 4)


class TestHomomorphismProperty:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_hash_linear_in_exponent(self, seed):
        """H(a·u + b·v) = H(u)^a·H(v)^b for random vectors and scalars."""
        rng = np.random.default_rng(seed)
        hasher = HomomorphicHasher(generate_params(5, seed=2))
        P = hasher.params.modulus
        u = rng.integers(0, Q, size=5)
        v = rng.integers(0, Q, size=5)
        a, b = int(rng.integers(0, Q)), int(rng.integers(0, Q))
        mixed = (a * u + b * v) % Q
        lhs = hasher.hash_payload(mixed)
        rhs = (pow(hasher.hash_payload(u), a, P)
               * pow(hasher.hash_payload(v), b, P)) % P
        assert lhs == rhs
