"""Edge-branch tests: unusual states and boundary behaviours."""

import numpy as np

from repro.coding import GenerationParams
from repro.core import OverlayNetwork, RandomGraphOverlay
from repro.sim import (
    BroadcastSimulation,
    GraphBroadcastSimulation,
    SessionConfig,
    run_session,
)


class TestDegenerateOverlays:
    def test_single_node_overlay(self):
        net = OverlayNetwork(k=4, d=2, seed=1)
        net.grow(1)
        assert net.connectivity_histogram() == {2: 1}
        assert net.mean_depth() == 1.0
        net.leave(0)
        assert net.population == 0

    def test_d_equals_k(self):
        """A node may clip every thread (d = k)."""
        net = OverlayNetwork(k=3, d=3, seed=2)
        net.grow(5)
        net.matrix.check_invariants()
        assert net.connectivity_histogram() == {3: 5}
        # each node's parents are exactly the previous node (x3 threads)
        order = net.matrix.node_ids
        for earlier, later in zip(order, order[1:]):
            parents = set(net.matrix.parents_of(later).values())
            assert parents == {earlier}

    def test_d_one_chains(self):
        """d = 1 degenerates to the §1 distribution path (no guarantees,
        but the machinery must still work)."""
        net = OverlayNetwork(k=5, d=1, seed=3)
        net.grow(20)
        net.matrix.check_invariants()
        assert all(c == 1 for c in net.connectivities().values())

    def test_everyone_fails_then_full_repair(self):
        net = OverlayNetwork(k=8, d=2, seed=4)
        net.grow(15)
        for node in list(net.working_nodes):
            net.fail(node)
        assert net.working_nodes == []
        net.repair_all()
        assert net.population == 0
        net.grow(5)  # the overlay is reusable afterwards
        assert net.connectivity_histogram() == {2: 5}


class TestBroadcastEdgeStates:
    def test_empty_overlay_broadcast_is_harmless(self):
        net = OverlayNetwork(k=6, d=2, seed=5)
        rng = np.random.default_rng(6)
        content = bytes(rng.integers(0, 256, size=200, dtype=np.uint8))
        sim = BroadcastSimulation(net, content, GenerationParams(4, 50), seed=7)
        sim.run(5)
        assert sim.report().nodes == []
        assert sim.server_packets == 0  # no occupied columns

    def test_single_generation_single_packet(self):
        net = OverlayNetwork(k=6, d=2, seed=8)
        net.grow(6)
        sim = BroadcastSimulation(net, b"x", GenerationParams(1, 1), seed=9)
        report = sim.run_until_complete(max_slots=60)
        assert report.completion_fraction == 1.0
        assert all(n.decoded_ok for n in report.nodes)

    def test_session_with_zero_slots_budget(self):
        result = run_session(SessionConfig(
            k=8, d=2, population=5, content_size=100,
            generation_size=4, payload_size=25, seed=10, max_slots=0,
        ))
        assert result.report.slots == 0
        assert result.report.completion_fraction == 0.0

    def test_graph_sim_on_empty_overlay(self):
        overlay = RandomGraphOverlay(k=6, d=2, seed=11)
        rng = np.random.default_rng(12)
        content = bytes(rng.integers(0, 256, size=100, dtype=np.uint8))
        sim = GraphBroadcastSimulation(
            overlay, content, GenerationParams(4, 25), seed=13
        )
        report = sim.run_until_complete(max_slots=5)
        assert report.nodes == []


class TestMatrixBoundaryOps:
    def test_k_equals_one(self, rng):
        from repro.core import ThreadMatrix

        matrix = ThreadMatrix(k=1)
        matrix.join(0, 1, rng)
        matrix.join(1, 1, rng)
        assert matrix.column_chain(0) == [0, 1]
        matrix.leave(0)
        assert matrix.column_chain(0) == [1]
        matrix.check_invariants()

    def test_interleaved_drop_add_same_column(self, rng):
        from repro.core import ThreadMatrix

        matrix = ThreadMatrix(k=4)
        matrix.join(0, 2, rng, columns=[0, 1])
        matrix.join(1, 2, rng, columns=[0, 1])
        matrix.drop_thread(1, column=0)
        matrix.add_thread(1, column=0)
        matrix.drop_thread(0, column=0)
        matrix.check_invariants()
        assert matrix.column_chain(0) == [1]

    def test_random_graph_population_one(self):
        overlay = RandomGraphOverlay(k=4, d=2, seed=14)
        overlay.join()
        graph = overlay.to_overlay_graph()
        assert graph.in_degree(0) == 2
        depths = overlay.depths_from_server()
        assert depths == {0: 1}
