"""Unit tests for the Edmonds branching packing baseline."""

import numpy as np
import pytest

from repro.baselines import (
    curtain_tree_decomposition,
    pack_arborescences,
    route_stripes,
    verify_packing,
)
from repro.core import SERVER, OverlayNetwork
from repro.core.topology import OverlayGraph


class TestCurtainDecomposition:
    def test_valid_packing(self, small_net):
        trees = curtain_tree_decomposition(small_net.matrix)
        assert len(trees) == 3
        assert verify_packing(small_net.graph(), trees)

    def test_every_node_in_every_tree(self, small_net):
        trees = curtain_tree_decomposition(small_net.matrix)
        for tree in trees:
            assert set(tree) == set(small_net.matrix.node_ids)

    def test_empty_matrix(self):
        net = OverlayNetwork(k=6, d=2, seed=1)
        assert curtain_tree_decomposition(net.matrix) == []

    def test_heterogeneous_rejected(self, rng):
        net = OverlayNetwork(k=12, d=2, seed=2)
        net.grow(5)
        net.join(d=4)
        with pytest.raises(ValueError):
            curtain_tree_decomposition(net.matrix)

    def test_trees_use_disjoint_threads(self, small_net):
        """Each (parent, child) pair may be reused at most its edge
        multiplicity; verify_packing covers it, but check totals too."""
        trees = curtain_tree_decomposition(small_net.matrix)
        used = sum(len(t) for t in trees)
        assert used == 40 * 3  # every thread segment used exactly once


class TestGeneralPacking:
    def test_packs_curtain_graph(self, rng):
        net = OverlayNetwork(k=10, d=2, seed=3)
        net.grow(20)
        graph = net.graph()
        trees = pack_arborescences(graph, 2, rng)
        assert verify_packing(graph, trees)

    def test_rejects_insufficient_connectivity(self, rng):
        graph = OverlayGraph()
        graph.add_node(1)
        graph.add_edge(SERVER, 1, 1)
        with pytest.raises(ValueError):
            pack_arborescences(graph, 2, rng)

    def test_single_tree_is_spanning(self, rng):
        net = OverlayNetwork(k=8, d=2, seed=4)
        net.grow(15)
        graph = net.graph()
        trees = pack_arborescences(graph, 1, rng)
        assert len(trees) == 1
        assert verify_packing(graph, trees)

    def test_matches_curtain_count(self, rng):
        """The general algorithm finds as many trees as the fast path."""
        net = OverlayNetwork(k=12, d=3, seed=5)
        net.grow(15)
        graph = net.graph()
        trees = pack_arborescences(graph, 3, rng)
        assert verify_packing(graph, trees)


class TestVerifyPacking:
    def test_detects_missing_node(self, small_net):
        trees = curtain_tree_decomposition(small_net.matrix)
        del trees[0][small_net.matrix.node_ids[0]]
        assert not verify_packing(small_net.graph(), trees)

    def test_detects_overused_edge(self, rng):
        net = OverlayNetwork(k=8, d=2, seed=6)
        net.grow(10)
        trees = curtain_tree_decomposition(net.matrix)
        # point both trees' entry for some node at the same parent
        node = net.matrix.node_ids[-1]
        parents = list(net.matrix.parents_of(node).values())
        if parents[0] != parents[1]:
            trees[0][node] = parents[0]
            trees[1][node] = parents[0]
            assert not verify_packing(net.graph(), trees)

    def test_detects_cycle(self):
        graph = OverlayGraph()
        for node in (1, 2):
            graph.add_node(node)
        graph.add_edge(SERVER, 1, 1)
        graph.add_edge(1, 2, 1)
        graph.add_edge(2, 1, 1)
        assert not verify_packing(graph, [{1: 2, 2: 1}])


class TestRouteStripes:
    def test_no_failures_full_delivery(self, small_net):
        trees = curtain_tree_decomposition(small_net.matrix)
        outcome = route_stripes(trees, failed=set())
        assert outcome.mean_stripe_fraction == 1.0
        assert outcome.full_delivery_fraction == 1.0
        assert outcome.affected_by_failure == 0.0

    def test_failure_breaks_subtrees(self, small_net):
        trees = curtain_tree_decomposition(small_net.matrix)
        victim = small_net.matrix.node_ids[0]
        outcome = route_stripes(trees, failed={victim})
        assert outcome.mean_stripe_fraction < 1.0
        assert outcome.affected_by_failure > 0.0

    def test_fixed_trees_worse_than_recomputed(self, small_net, rng):
        """The paper's point: after failures a stale packing loses stripes
        that recomputation (on the working graph) would recover."""
        trees = curtain_tree_decomposition(small_net.matrix)
        victims = set(small_net.matrix.node_ids[:4])
        stale = route_stripes(trees, failed=victims)
        for victim in victims:
            small_net.fail(victim)
        connectivities = small_net.connectivities(
            [n for n in small_net.matrix.node_ids if n not in victims]
        )
        # recomputation could deliver min(conn, d) stripes to each node
        recomputed_fraction = float(
            np.mean([min(c, 3) / 3 for c in connectivities.values()])
        )
        assert recomputed_fraction >= stale.mean_stripe_fraction

    def test_empty_packing(self):
        outcome = route_stripes([], failed=set())
        assert outcome.mean_stripe_fraction == 1.0
