"""Unit tests for session orchestration."""

import pytest

from repro.sim import NodeRole, SessionConfig, run_session


def small_config(**overrides):
    base = dict(
        k=12, d=2, population=25, content_size=600,
        generation_size=6, payload_size=32, seed=21, max_slots=800,
    )
    base.update(overrides)
    return SessionConfig(**base)


class TestBasicSession:
    def test_static_session_completes(self):
        result = run_session(small_config())
        assert result.report.completion_fraction == 1.0
        assert result.failures_injected == 0
        assert result.joins == 0

    def test_deterministic_given_seed(self):
        a = run_session(small_config())
        b = run_session(small_config())
        assert a.report.slots == b.report.slots
        assert a.report.completion_slots() == b.report.completion_slots()

    def test_different_seed_differs(self):
        a = run_session(small_config(seed=21))
        b = run_session(small_config(seed=22))
        assert (
            a.report.completion_slots() != b.report.completion_slots()
            or a.report.slots != b.report.slots
        )


class TestDynamics:
    def test_failures_and_repairs_accounted(self):
        result = run_session(
            small_config(fail_probability=0.02, repair_interval=10,
                         max_slots=1200)
        )
        assert result.failures_injected >= 0
        # every failure is either repaired by a sweep or still outstanding
        # when the session ends mid-interval
        outstanding = len(result.net.server.failed)
        assert result.repairs_performed + outstanding == result.failures_injected

    def test_churn_grows_population(self):
        result = run_session(
            small_config(join_rate=2, repair_interval=10, max_slots=400,
                         content_size=2000)
        )
        assert result.joins > 0
        assert result.net.population > 25

    def test_graceful_leaves_shrink_population(self):
        result = run_session(
            small_config(leave_probability=0.05, repair_interval=5,
                         max_slots=600)
        )
        assert result.graceful_leaves > 0

    def test_uniform_insert_mode(self):
        result = run_session(small_config(insert_mode="uniform"))
        assert result.report.completion_fraction == 1.0


class TestAttackConfiguration:
    def test_roles_assigned_by_fraction(self):
        result = run_session(
            small_config(entropy_attacker_fraction=0.2, max_slots=150)
        )
        roles = result.simulation.roles
        entropy = [r for r in roles.values() if r is NodeRole.ENTROPY_ATTACKER]
        assert len(entropy) == 5  # 20% of 25

    def test_jammers_poison(self):
        result = run_session(
            small_config(jammer_fraction=0.1, max_slots=600)
        )
        assert result.report.poisoned_fraction > 0.0

    def test_excessive_fractions_rejected(self):
        with pytest.raises(ValueError):
            run_session(small_config(entropy_attacker_fraction=0.7,
                                     jammer_fraction=0.7))


class TestDownloadDurations:
    def test_initial_population_measured_from_zero(self):
        result = run_session(small_config())
        durations = result.download_durations()
        assert set(durations) == {n.node_id for n in result.report.nodes
                                  if n.completed_at is not None}
        for node in result.report.nodes:
            if node.completed_at is not None:
                assert durations[node.node_id] == node.completed_at

    def test_late_joiners_measured_on_own_clock(self):
        result = run_session(
            small_config(join_rate=2, repair_interval=10, max_slots=900,
                         content_size=1500)
        )
        late = [n for n, t in result.joined_at.items() if t > 0]
        assert late, "the churn must have admitted someone mid-run"
        durations = result.download_durations()
        for node_id in late:
            if node_id in durations:
                assert durations[node_id] >= 0
                # on its own clock, a late joiner's duration is shorter
                # than its absolute completion slot
                completed = next(
                    n.completed_at for n in result.report.nodes
                    if n.node_id == node_id
                )
                assert durations[node_id] < completed

    def test_incomplete_nodes_absent(self):
        result = run_session(small_config(max_slots=3))
        assert result.download_durations() == {}
