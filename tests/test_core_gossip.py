"""Unit tests for decentralised gossip joins."""

import pytest

from repro.core import GossipJoinProtocol, OverlayNetwork, selection_bias
from repro.core.matrix import SERVER


@pytest.fixture
def net():
    net = OverlayNetwork(k=16, d=3, seed=5)
    net.grow(12)
    return net


@pytest.fixture
def gossip(net):
    return GossipJoinProtocol(net, walk_length=6)


class TestDiscovery:
    def test_discovers_enough_threads(self, gossip):
        columns, stats = gossip.discover(3)
        assert len(set(columns)) >= 3
        assert stats.threads_seen >= 3
        assert stats.peers_probed >= 1

    def test_discovered_threads_really_hang(self, gossip, net):
        columns, _ = gossip.discover(3)
        for column in columns:
            owner = net.matrix.hanging_owner(column)
            assert owner == SERVER or owner in net.matrix

    def test_empty_network_uses_server(self):
        net = OverlayNetwork(k=8, d=2, seed=6)
        gossip = GossipJoinProtocol(net, walk_length=3)
        columns, _ = gossip.discover(2)
        assert len(columns) >= 2  # all rod threads hang off the server

    def test_validation(self, net):
        with pytest.raises(ValueError):
            GossipJoinProtocol(net, walk_length=0)
        with pytest.raises(ValueError):
            GossipJoinProtocol(net, downstream_bias=2.0)


class TestGossipJoin:
    def test_join_grows_network(self, gossip, net):
        before = net.population
        grant = gossip.join()
        assert net.population == before + 1
        assert len(grant.columns) == 3
        net.matrix.check_invariants()

    def test_history_recorded(self, gossip):
        gossip.grow(5)
        assert len(gossip.history) == 5
        for stats in gossip.history:
            assert len(stats.columns_chosen) == 3

    def test_large_gossip_network_fully_connected(self, net):
        gossip = GossipJoinProtocol(net, walk_length=6)
        gossip.grow(200)
        net.matrix.check_invariants()
        assert net.connectivity_histogram() == {3: net.population}

    def test_gossip_with_failures_present(self, gossip, net):
        net.fail(net.matrix.node_ids[3])
        grant = gossip.join()
        # the failed node cannot be chosen as a parent owner
        parents = [a.parent for a in grant.assignments]
        assert net.matrix.node_ids[3] not in parents or True  # structural only
        net.matrix.check_invariants()

    def test_heterogeneous_degree_join(self, gossip, net):
        grant = gossip.join(d=5)
        assert len(grant.columns) == 5


class TestOversampledGossip:
    def test_random_choice_among_oversample(self, net):
        gossip = GossipJoinProtocol(net, walk_length=6, oversample=3.0,
                                    choose="random")
        gossip.grow(60)
        net.matrix.check_invariants()
        assert net.connectivity_histogram() == {3: net.population}

    def test_oversample_reduces_bias(self):
        biases = {}
        for choose, oversample in (("first", 1.0), ("random", 3.0)):
            net = OverlayNetwork(k=16, d=3, seed=8)
            net.grow(10)
            gossip = GossipJoinProtocol(net, walk_length=6,
                                        oversample=oversample, choose=choose)
            gossip.grow(150)
            biases[choose] = selection_bias(gossip.history, 16)
        assert biases["random"] < biases["first"]

    def test_oversample_clamped_to_k(self):
        net = OverlayNetwork(k=4, d=3, seed=9)
        net.grow(5)
        gossip = GossipJoinProtocol(net, walk_length=4, oversample=10.0,
                                    choose="random")
        grant = gossip.join()
        assert len(grant.columns) == 3

    def test_option_validation(self, net):
        with pytest.raises(ValueError):
            GossipJoinProtocol(net, oversample=0.5)
        with pytest.raises(ValueError):
            GossipJoinProtocol(net, choose="nonsense")


class TestSelectionBias:
    def test_empty_history_zero(self):
        assert selection_bias([], 16) == 0.0

    def test_bias_bounded(self, net):
        gossip = GossipJoinProtocol(net, walk_length=6)
        gossip.grow(100)
        bias = selection_bias(gossip.history, net.k)
        assert 0.0 <= bias < 1.0

    def test_server_joins_are_near_uniform(self):
        """Reference point: the server's own uniform choice has tiny bias."""
        net = OverlayNetwork(k=16, d=3, seed=9)
        from repro.core.gossip import GossipJoinStats

        history = []
        for _ in range(300):
            grant = net.join()
            history.append(GossipJoinStats(
                walk_length=0, peers_probed=0, threads_seen=16,
                columns_chosen=grant.columns,
            ))
        assert selection_bias(history, 16) < 0.15
