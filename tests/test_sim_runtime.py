"""Unit tests for the unified slotted runtime (topology × behaviour)."""

import numpy as np
import pytest

from repro.coding.generation import GenerationParams
from repro.core import OverlayNetwork
from repro.core.matrix import SERVER
from repro.core.random_graph import RandomGraphOverlay
from repro.sim import (
    DEFAULT_MAX_SLOTS,
    BroadcastSimulation,
    CurtainTopology,
    FloodingReport,
    GraphBroadcastSimulation,
    GraphTopology,
    LossModel,
    NodeBehavior,
    NodeReport,
    NodeRole,
    RlncBehavior,
    RngStreams,
    RunReport,
    SessionConfig,
    SlottedRuntime,
    StaticTopology,
    StoreForwardBehavior,
    Topology,
    completion_percentile,
    mean_completion_slot,
    run_session,
)
from repro.sim.links import LinkStats


def _content(size: int, seed: int = 7) -> bytes:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=size, dtype=np.uint8).tobytes()


def _rlnc_runtime(topology, seed=5, g=4, payload=16, **kwargs):
    streams = RngStreams(seed)
    behavior = RlncBehavior(
        _content(g * payload), GenerationParams(g, payload), streams
    )
    return SlottedRuntime(topology, behavior, streams=streams, **kwargs)


class TestStaticTopology:
    def test_chain_decodes_end_to_end(self):
        topology = StaticTopology([(SERVER, 0), (0, 1), (1, 2)])
        runtime = _rlnc_runtime(topology)
        report = runtime.run_until_complete(max_slots=200)
        assert report.completion_fraction == 1.0
        assert all(n.decoded_ok for n in report.nodes)
        # pipeline delay: each hop adds at least one slot
        by_id = {n.node_id: n for n in report.nodes}
        assert by_id[0].completed_at < by_id[2].completed_at

    def test_infers_nodes_from_edges(self):
        topology = StaticTopology([(SERVER, 3), (3, 9)])
        assert topology.measured_nodes() == [3, 9]

    def test_fail_and_repair(self):
        topology = StaticTopology([(SERVER, 0), (0, 1)])
        runtime = _rlnc_runtime(topology)
        topology.fail(0)
        runtime.step()
        # failed node neither receives nor forwards
        assert runtime.behavior._received.get(0, 0) == 0
        assert runtime.behavior._received.get(1, 0) == 0
        topology.repair(0)
        report = runtime.run_until_complete(max_slots=200)
        assert report.completion_fraction == 1.0

    def test_tree_with_flooding_behavior(self):
        # a striped two-branch tree under uncoded forwarding
        edges = [(SERVER, 0), (0, 1), (0, 2), (1, 3), (2, 3)]
        streams = RngStreams(11)
        runtime = SlottedRuntime(
            StaticTopology(edges), StoreForwardBehavior(6, streams),
            streams=streams,
        )
        report = runtime.run_until_complete(max_slots=500)
        assert report.completion_fraction == 1.0
        flooding = FloodingReport.from_run(report)
        assert flooding.completion_fraction == 1.0
        assert 0.0 <= flooding.duplicate_fraction < 1.0


class TestProtocols:
    def test_topologies_satisfy_protocol(self):
        net = OverlayNetwork(k=4, d=2, seed=1)
        net.grow(4)
        overlay = RandomGraphOverlay(k=4, d=2, seed=1)
        overlay.grow(4)
        assert isinstance(CurtainTopology(net), Topology)
        assert isinstance(GraphTopology(overlay), Topology)
        assert isinstance(StaticTopology([(SERVER, 0)]), Topology)

    def test_behaviors_satisfy_protocol(self):
        streams = RngStreams(2)
        rlnc = RlncBehavior(_content(64), GenerationParams(4, 16), streams)
        flood = StoreForwardBehavior(4, RngStreams(3))
        assert isinstance(rlnc, NodeBehavior)
        assert isinstance(flood, NodeBehavior)

    def test_adapters_share_default_budget(self):
        import inspect

        from repro.baselines import FloodingSimulation, RarestFirstSimulation

        for cls in (BroadcastSimulation, GraphBroadcastSimulation,
                    FloodingSimulation, RarestFirstSimulation):
            signature = inspect.signature(cls.run_until_complete)
            assert signature.parameters["max_slots"].default == DEFAULT_MAX_SLOTS


class TestSlotHooks:
    def test_hooks_fire_once_per_driven_slot(self):
        topology = StaticTopology([(SERVER, 0)])
        runtime = _rlnc_runtime(topology)
        seen = []
        runtime.add_slot_hook(lambda rt: seen.append(rt.slot))
        runtime.run(5)
        assert seen == [0, 1, 2, 3, 4]

    def test_hook_driven_failure_halts_delivery(self):
        topology = StaticTopology([(SERVER, 0), (0, 1)])
        runtime = _rlnc_runtime(topology)

        def kill_at_three(rt):
            if rt.slot == 3:
                topology.fail(1)

        runtime.add_slot_hook(kill_at_three)
        runtime.run(20)
        received = runtime.behavior._received
        assert received[0] == 20  # head of chain unaffected
        assert received.get(1, 0) <= 3

    def test_bare_step_skips_hooks(self):
        runtime = _rlnc_runtime(StaticTopology([(SERVER, 0)]))
        fired = []
        runtime.add_slot_hook(lambda rt: fired.append(rt.slot))
        runtime.step()
        assert fired == []


class TestTimeline:
    def test_timeline_records_slots(self):
        topology = StaticTopology([(SERVER, 0), (0, 1)])
        runtime = _rlnc_runtime(topology, record_timeline=True)
        report = runtime.run_until_complete(max_slots=100)
        assert len(report.timeline) == report.slots
        assert [record.slot for record in report.timeline] == list(range(report.slots))
        assert sum(record.completions for record in report.timeline) == len(
            [n for n in report.nodes if n.completed_at is not None]
        )
        total = sum(record.delivered for record in report.timeline)
        assert total == report.link_stats.delivered

    def test_timeline_off_by_default(self):
        runtime = _rlnc_runtime(StaticTopology([(SERVER, 0)]))
        runtime.run(3)
        assert runtime.timeline == []


class TestReportHelpers:
    def test_summary_helpers_empty(self):
        assert mean_completion_slot([]) == 0.0
        assert completion_percentile([], 95) == 0.0

    def test_summary_helpers_values(self):
        slots = [10, 20, 30, 40]
        assert mean_completion_slot(slots) == 25.0
        assert completion_percentile(slots, 50) == 25.0
        assert completion_percentile(slots, 100) == 40.0

    def test_run_report_methods_match_helpers(self):
        rows = [
            NodeReport(node_id=i, rank=4, needed=4, completed_at=slot,
                       received=6, innovative=4, decoded_ok=True)
            for i, slot in enumerate([5, 15])
        ]
        report = RunReport(slots=20, nodes=rows, link_stats=LinkStats(),
                           server_packets=0)
        assert report.mean_completion_slot() == 10.0
        assert report.completion_percentile(100) == 15.0

    def test_flooding_view_derives_from_rows(self):
        rows = [
            NodeReport(node_id=0, rank=3, needed=4, completed_at=None,
                       received=9, innovative=3, decoded_ok=None),
            NodeReport(node_id=1, rank=4, needed=4, completed_at=12,
                       received=4, innovative=4, decoded_ok=None),
        ]
        report = RunReport(slots=20, nodes=rows, link_stats=LinkStats(),
                           server_packets=0)
        view = FloodingReport.from_run(report)
        assert view.completion_fraction == 0.5
        assert view.mean_unique_fraction == pytest.approx((0.75 + 1.0) / 2)
        assert view.duplicate_fraction == pytest.approx(6 / 13)
        assert view.completion_slots == [12]
        assert view.mean_completion_slot() == 12.0


class TestGraphRoles:
    def test_graph_broadcast_supports_attacker_roles(self):
        overlay = RandomGraphOverlay(k=6, d=2, seed=31)
        nodes = overlay.grow(10)
        sim = GraphBroadcastSimulation(
            overlay,
            _content(256),
            GenerationParams(4, 64),
            seed=32,
            roles={nodes[4]: NodeRole.ENTROPY_ATTACKER},
        )
        report = sim.run_until_complete(max_slots=300)
        measured = {n.node_id for n in report.nodes}
        assert nodes[4] not in measured  # attackers are not measured
        assert report.completion_fraction > 0.0


class TestGraphSession:
    def test_run_session_on_graph_topology(self):
        result = run_session(
            SessionConfig(
                k=6, d=2, population=10, content_size=2048,
                generation_size=8, payload_size=64, loss_rate=0.2,
                repair_interval=3, join_rate=1, leave_probability=0.05,
                max_slots=300, seed=77, topology="graph",
            )
        )
        assert result.joins > 0
        assert result.failures_injected == 0
        assert isinstance(result.net, RandomGraphOverlay)
        assert result.report.completion_fraction > 0.0

    def test_graph_topology_rejects_failures(self):
        with pytest.raises(ValueError, match="curtain"):
            run_session(
                SessionConfig(k=6, d=2, population=4, fail_probability=0.1,
                              repair_interval=10, max_slots=10,
                              topology="graph", seed=1)
            )

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError, match="unknown topology"):
            run_session(SessionConfig(k=4, d=2, population=2, max_slots=5,
                                      topology="mesh", seed=1))


class TestCurtainAdapterDelegation:
    def test_adapter_state_is_runtime_state(self):
        net = OverlayNetwork(k=4, d=2, seed=9)
        net.grow(6)
        sim = BroadcastSimulation(
            net, _content(256), GenerationParams(4, 64), seed=10,
            loss=LossModel(0.1),
        )
        sim.run(5)
        assert sim.slot == sim.runtime.slot == 5
        assert sim.link_stats is sim.runtime.link_stats
        assert sim._recoders is sim.behavior._recoders
        sim.detach_server(at_slot=7)
        assert sim.runtime.server_detach_slot == 7
        assert sim.server_detach_slot == 7
