"""Tests for stream framing and the bounded outbound pumps."""

import asyncio

import numpy as np
import pytest

from repro.coding import CodedPacket
from repro.coding.wire import encode_packet
from repro.net.control import DataHello, encode_control
from repro.net.framing import (
    KIND_CONTROL,
    KIND_DATA,
    FrameBuffer,
    FramingError,
    encode_data_frame,
    encode_frame,
    read_message,
)
from repro.net.streams import PacketSender
from repro.protocol.messages import KeepAlive, SetParent


def _packet(generation=0, origin=3):
    return CodedPacket(
        generation=generation,
        coefficients=np.array([1, 2, 3], dtype=np.uint8),
        payload=np.arange(10, dtype=np.uint8),
        origin=origin,
    )


def _decode_queued(frame: bytes) -> CodedPacket:
    """Decode one length-prefixed data frame from a sender queue."""
    buffer = FrameBuffer()
    buffer.feed(frame)
    return buffer.next_message()


class TestFrameBuffer:
    def test_byte_by_byte_feed(self):
        """TCP can deliver any fragmentation; one byte at a time is the
        worst case."""
        buffer = FrameBuffer()
        frame = encode_frame(KIND_DATA, encode_packet(_packet()))
        for i, byte in enumerate(frame):
            buffer.feed(bytes([byte]))
            message = buffer.next_message()
            if i < len(frame) - 1:
                assert message is None
            else:
                assert isinstance(message, CodedPacket)

    def test_mixed_kinds_in_one_feed(self):
        buffer = FrameBuffer()
        buffer.feed(
            encode_frame(KIND_DATA, encode_packet(_packet(generation=4)))
            + encode_frame(KIND_CONTROL, encode_control(SetParent(column=1, parent=2)))
            + encode_frame(KIND_CONTROL, encode_control(KeepAlive(column=0, sender=9)))
        )
        messages = list(buffer.messages())
        assert [type(m).__name__ for m in messages] == [
            "CodedPacket", "SetParent", "KeepAlive"
        ]
        assert messages[0].generation == 4
        assert buffer.pending() == 0

    def test_oversize_frame_rejected(self):
        buffer = FrameBuffer()
        buffer.feed((2**30).to_bytes(4, "big") + b"\x00junk")
        with pytest.raises(FramingError):
            buffer.next_message()

    def test_unknown_kind_rejected(self):
        buffer = FrameBuffer()
        buffer.feed((1).to_bytes(4, "big") + bytes([7]) + b"x")
        with pytest.raises(FramingError):
            buffer.next_message()

    def test_corrupt_body_rejected(self):
        body = bytearray(encode_packet(_packet()))
        body[-1] ^= 0x01  # breaks the CRC32 trailer
        buffer = FrameBuffer()
        buffer.feed(encode_frame(KIND_DATA, bytes(body)))
        with pytest.raises(FramingError):
            buffer.next_message()


class TestReadMessage:
    def _reader(self, data: bytes, eof: bool = True) -> asyncio.StreamReader:
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        if eof:
            reader.feed_eof()
        return reader

    def test_reads_frames_then_clean_eof(self):
        async def scenario():
            reader = self._reader(
                encode_frame(KIND_CONTROL, encode_control(DataHello(node_id=1,
                                                                    column=2)))
                + encode_frame(KIND_DATA, encode_packet(_packet()))
            )
            first = await read_message(reader)
            second = await read_message(reader)
            third = await read_message(reader)
            return first, second, third

        first, second, third = asyncio.run(scenario())
        assert first == DataHello(node_id=1, column=2)
        assert isinstance(second, CodedPacket)
        assert third is None

    def test_truncated_prefix_raises(self):
        async def scenario():
            await read_message(self._reader(b"\x00\x00"))

        with pytest.raises(FramingError):
            asyncio.run(scenario())

    def test_truncated_body_raises(self):
        async def scenario():
            frame = encode_frame(KIND_DATA, encode_packet(_packet()))
            await read_message(self._reader(frame[:-3]))

        with pytest.raises(FramingError):
            asyncio.run(scenario())


class _StubWriter:
    """Just enough StreamWriter for a PacketSender that never runs."""

    def write(self, data):  # pragma: no cover - enqueue never writes
        raise AssertionError("enqueue must not touch the writer")

    def close(self):
        pass


class TestPacketSenderQueue:
    def test_drop_oldest_on_overflow(self):
        async def scenario():
            sender = PacketSender(_StubWriter(), column=0, sender_id=1, limit=3)
            for generation in range(5):
                sender.enqueue(_packet(generation=generation))
            return sender

        sender = asyncio.run(scenario())
        assert sender.stats.enqueued == 5
        assert sender.stats.dropped == 2
        # The three newest mixtures survive — RLNC makes the evicted
        # two redundant by construction.  The queue holds pre-encoded
        # length-prefixed frames; decode them to inspect.
        queued = [_decode_queued(frame) for frame in sender._queue]
        assert [p.generation for p in queued] == [2, 3, 4]

    def test_enqueue_after_close_is_refused(self):
        async def scenario():
            sender = PacketSender(_StubWriter(), column=0, sender_id=1, limit=2)
            sender.close()
            return sender.enqueue(_packet())

        assert asyncio.run(scenario()) is False


# ----------------------------------------------------------------------
# Property-based stream fuzzing (hypothesis)

from hypothesis import given, settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.net.control import decode_control
from repro.protocol.messages import ComplaintMsg, JoinGrant, Probe

_INT32 = st.integers(-(2**31), 2**31 - 1)
_UINT16 = st.integers(0, 2**16 - 1)
_UINT64 = st.integers(0, 2**64 - 1)

#: Control messages whose encoded form round-trips exactly (field
#: values stay within their struct ranges).
control_messages = st.one_of(
    st.builds(KeepAlive, column=_UINT16, sender=_INT32),
    st.builds(SetParent, column=_UINT16, parent=_INT32),
    st.builds(ComplaintMsg, reporter=_INT32, column=_UINT16, suspect=_INT32),
    st.builds(Probe, nonce=_UINT64),
    st.builds(DataHello, node_id=_INT32, column=_UINT16),
    st.builds(
        JoinGrant,
        node_id=_INT32,
        assignments=st.lists(
            st.tuples(_UINT16, _INT32), max_size=4
        ).map(tuple),
    ),
)

coded_packets = st.builds(
    lambda generation, origin, coeffs, payload: CodedPacket(
        generation=generation,
        origin=origin,
        coefficients=np.array(coeffs, dtype=np.uint8),
        payload=np.array(payload, dtype=np.uint8),
    ),
    generation=st.integers(0, 2**32 - 1),
    origin=_INT32,
    coeffs=st.lists(st.integers(0, 255), min_size=1, max_size=8),
    payload=st.lists(st.integers(0, 255), min_size=1, max_size=32),
)


def _message_key(message):
    """An equality key (CodedPacket holds numpy arrays, so dataclass
    ``==`` is ambiguous)."""
    if isinstance(message, CodedPacket):
        return (
            "packet", message.generation, message.origin,
            message.coefficients.tobytes(), message.payload.tobytes(),
        )
    return ("control", message)


class FrameStreamMachine(RuleBasedStateMachine):
    """Feed a valid frame stream to FrameBuffer in arbitrary chunk
    splits; whatever the fragmentation, the decoded message sequence
    must be exactly a prefix of what was queued — never reordered,
    never duplicated, never invented."""

    def __init__(self):
        super().__init__()
        self.buffer = FrameBuffer()
        self.pending = bytearray()  # encoded but not yet fed
        self.expected = []
        self.decoded = []

    @rule(message=control_messages)
    def queue_control(self, message):
        self.expected.append(_message_key(message))
        self.pending.extend(encode_frame(KIND_CONTROL, encode_control(message)))

    @rule(packet=coded_packets)
    def queue_packet(self, packet):
        self.expected.append(_message_key(packet))
        self.pending.extend(encode_frame(KIND_DATA, encode_packet(packet)))

    @rule(size=st.integers(1, 64))
    def feed_chunk(self, size):
        chunk = bytes(self.pending[:size])
        del self.pending[:size]
        self.buffer.feed(chunk)
        for message in self.buffer.messages():
            self.decoded.append(_message_key(message))

    @invariant()
    def decoded_is_a_prefix_of_expected(self):
        assert self.decoded == self.expected[:len(self.decoded)]

    def teardown(self):
        # Flush the remainder: every queued message must come out.
        self.buffer.feed(bytes(self.pending))
        for message in self.buffer.messages():
            self.decoded.append(_message_key(message))
        assert self.decoded == self.expected


FrameStreamMachine.TestCase.settings = settings(
    max_examples=30, stateful_step_count=30, deadline=None
)
TestFrameStream = FrameStreamMachine.TestCase


class TestCorruptStreams:
    @given(data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_corrupt_data_frame_never_desyncs_or_overreads(self, data):
        """Flip one bit anywhere in a stream of CRC32-protected data
        frames: every frame before the flip decodes intact, the
        corrupted frame never decodes, and the only error the buffer
        may raise is FramingError."""
        packets = data.draw(
            st.lists(coded_packets, min_size=1, max_size=4), label="packets"
        )
        frames = [encode_frame(KIND_DATA, encode_packet(p)) for p in packets]
        target = data.draw(
            st.integers(0, len(frames) - 1), label="corrupt_frame"
        )
        start = sum(len(f) for f in frames[:target])
        offset = start + data.draw(
            st.integers(0, len(frames[target]) - 1), label="corrupt_offset"
        )
        bit = data.draw(st.integers(0, 7), label="bit")
        blob = bytearray(b"".join(frames))
        blob[offset] ^= 1 << bit

        buffer = FrameBuffer()
        decoded = []
        position = 0
        failed = False
        while position < len(blob) and not failed:
            size = data.draw(st.integers(1, 64), label="chunk")
            buffer.feed(bytes(blob[position:position + size]))
            position += size
            try:
                decoded.extend(
                    _message_key(m) for m in buffer.messages()
                )
            except FramingError:
                failed = True
            except Exception as exc:  # pragma: no cover - the assertion
                raise AssertionError(
                    f"corrupt stream escaped FramingError: {exc!r}"
                ) from exc

        expected = [_message_key(p) for p in packets]
        # Nothing decodes past the corrupted frame, and everything that
        # did decode matches the original stream order exactly.
        assert len(decoded) <= target
        assert decoded == expected[:len(decoded)]

    @given(message=control_messages)
    @settings(max_examples=50, deadline=None)
    def test_control_codec_roundtrip(self, message):
        assert decode_control(encode_control(message)) == message


# ----------------------------------------------------------------------
# PacketSender edge cases (satellite: drop-oldest queue branches)


class _CollectingWriter:
    """A writer whose sink is a list (drain never blocks)."""

    def __init__(self):
        self.chunks = []
        self.closed = False

    def write(self, data):
        self.chunks.append(bytes(data))

    async def drain(self):
        return None

    def close(self):
        self.closed = True


class TestPacketSenderEdges:
    def test_zero_capacity_is_rejected(self):
        with pytest.raises(ValueError, match="limit"):
            PacketSender(_CollectingWriter(), column=0, sender_id=1, limit=0)

    def test_negative_capacity_is_rejected(self):
        with pytest.raises(ValueError, match="limit"):
            PacketSender(_CollectingWriter(), column=0, sender_id=1, limit=-3)

    def test_close_while_blocked_unblocks_run(self):
        """close() must wake a pump parked on an empty queue (no
        keep-alives configured, so the wait would otherwise be forever)."""

        async def scenario():
            writer = _CollectingWriter()
            sender = PacketSender(writer, column=0, sender_id=1, limit=2)
            task = asyncio.ensure_future(sender.run())
            await asyncio.sleep(0)  # let run() park on the empty queue
            assert not task.done()
            sender.close()
            await asyncio.wait_for(task, timeout=5)
            return writer.closed

        assert asyncio.run(scenario()) is True

    def test_enqueue_while_closed_never_wakes_the_pump(self):
        async def scenario():
            writer = _CollectingWriter()
            sender = PacketSender(writer, column=0, sender_id=1, limit=2)
            sender.close()
            assert sender.enqueue(_packet()) is False
            await sender.run()  # exits immediately: already closed
            return writer.chunks

        assert asyncio.run(scenario()) == []

    def test_keepalive_cadence_on_virtual_clock(self):
        """Idle keep-alives follow the configured interval exactly when
        the pump runs on virtual time."""
        from repro.net.testing import VirtualClock

        async def scenario():
            clock = VirtualClock()
            writer = _CollectingWriter()
            sender = PacketSender(
                writer, column=3, sender_id=7, limit=4,
                keepalive_interval=0.5, clock=clock,
            )
            task = asyncio.ensure_future(sender.run())
            await clock.advance(1.75)  # idle: keep-alives at 0.5, 1.0, 1.5
            idle_frames = len(writer.chunks)
            sender.enqueue(_packet())
            await clock.advance(0.1)
            sender.close()
            await task
            return idle_frames, sender.stats

        idle_frames, stats = asyncio.run(scenario())
        assert idle_frames == 3
        assert stats.keepalives == 3
        assert stats.sent == 1


class _CoalescingWriter(_CollectingWriter):
    """A collecting writer that also supports ``writelines``."""

    def __init__(self):
        super().__init__()
        self.batches = []

    def writelines(self, frames):
        frames = list(frames)
        self.batches.append([bytes(f) for f in frames])
        self.chunks.extend(bytes(f) for f in frames)


class TestSenderCoalescing:
    """SenderStats accounting and the one-writelines-per-wakeup flush."""

    @staticmethod
    def _pump(writer, n):
        async def scenario():
            sender = PacketSender(writer, column=0, sender_id=1, limit=2 * n)
            frames = [
                encode_data_frame(_packet(generation=i)) for i in range(n)
            ]
            for frame in frames:
                sender.enqueue_frame(frame)
            task = asyncio.ensure_future(sender.run())
            await asyncio.sleep(0)  # one wakeup: the whole queue drains
            sender.close()
            await task
            return sender.stats, frames

        return asyncio.run(scenario())

    def test_queue_drains_in_one_writelines_flush(self):
        writer = _CoalescingWriter()
        stats, frames = self._pump(writer, 5)
        assert writer.batches == [frames]  # a single writelines call
        assert stats.flushes == 1
        assert stats.sent == 5
        assert stats.bytes_sent == sum(len(f) for f in frames)

    def test_writer_without_writelines_falls_back_per_frame(self):
        """The chaos harness's virtual writer has no writelines; the
        pump must emit identical bytes via write(), same accounting."""
        writer = _CollectingWriter()
        stats, frames = self._pump(writer, 5)
        assert writer.chunks == frames
        assert stats.flushes == 1
        assert stats.sent == 5
        assert stats.bytes_sent == sum(len(f) for f in frames)

    def test_coalesce_opt_out_restores_per_frame_writes(self):
        async def scenario():
            writer = _CoalescingWriter()
            sender = PacketSender(
                writer, column=0, sender_id=1, limit=8, coalesce=False
            )
            frames = [
                encode_data_frame(_packet(generation=i)) for i in range(3)
            ]
            for frame in frames:
                sender.enqueue_frame(frame)
            task = asyncio.ensure_future(sender.run())
            await asyncio.sleep(0)
            sender.close()
            await task
            return writer, sender.stats, frames

        writer, stats, frames = asyncio.run(scenario())
        assert writer.batches == []  # writelines never used
        assert writer.chunks == frames
        assert stats.bytes_sent == sum(len(f) for f in frames)
