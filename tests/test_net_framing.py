"""Tests for stream framing and the bounded outbound pumps."""

import asyncio

import numpy as np
import pytest

from repro.coding import CodedPacket
from repro.coding.wire import encode_packet
from repro.net.control import DataHello, encode_control
from repro.net.framing import (
    KIND_CONTROL,
    KIND_DATA,
    FrameBuffer,
    FramingError,
    encode_frame,
    read_message,
)
from repro.net.streams import PacketSender
from repro.protocol_sim.messages import KeepAlive, SetParent


def _packet(generation=0, origin=3):
    return CodedPacket(
        generation=generation,
        coefficients=np.array([1, 2, 3], dtype=np.uint8),
        payload=np.arange(10, dtype=np.uint8),
        origin=origin,
    )


class TestFrameBuffer:
    def test_byte_by_byte_feed(self):
        """TCP can deliver any fragmentation; one byte at a time is the
        worst case."""
        buffer = FrameBuffer()
        frame = encode_frame(KIND_DATA, encode_packet(_packet()))
        for i, byte in enumerate(frame):
            buffer.feed(bytes([byte]))
            message = buffer.next_message()
            if i < len(frame) - 1:
                assert message is None
            else:
                assert isinstance(message, CodedPacket)

    def test_mixed_kinds_in_one_feed(self):
        buffer = FrameBuffer()
        buffer.feed(
            encode_frame(KIND_DATA, encode_packet(_packet(generation=4)))
            + encode_frame(KIND_CONTROL, encode_control(SetParent(column=1, parent=2)))
            + encode_frame(KIND_CONTROL, encode_control(KeepAlive(column=0, sender=9)))
        )
        messages = list(buffer.messages())
        assert [type(m).__name__ for m in messages] == [
            "CodedPacket", "SetParent", "KeepAlive"
        ]
        assert messages[0].generation == 4
        assert buffer.pending() == 0

    def test_oversize_frame_rejected(self):
        buffer = FrameBuffer()
        buffer.feed((2**30).to_bytes(4, "big") + b"\x00junk")
        with pytest.raises(FramingError):
            buffer.next_message()

    def test_unknown_kind_rejected(self):
        buffer = FrameBuffer()
        buffer.feed((1).to_bytes(4, "big") + bytes([7]) + b"x")
        with pytest.raises(FramingError):
            buffer.next_message()

    def test_corrupt_body_rejected(self):
        body = bytearray(encode_packet(_packet()))
        body[-1] ^= 0x01  # breaks the CRC32 trailer
        buffer = FrameBuffer()
        buffer.feed(encode_frame(KIND_DATA, bytes(body)))
        with pytest.raises(FramingError):
            buffer.next_message()


class TestReadMessage:
    def _reader(self, data: bytes, eof: bool = True) -> asyncio.StreamReader:
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        if eof:
            reader.feed_eof()
        return reader

    def test_reads_frames_then_clean_eof(self):
        async def scenario():
            reader = self._reader(
                encode_frame(KIND_CONTROL, encode_control(DataHello(node_id=1,
                                                                    column=2)))
                + encode_frame(KIND_DATA, encode_packet(_packet()))
            )
            first = await read_message(reader)
            second = await read_message(reader)
            third = await read_message(reader)
            return first, second, third

        first, second, third = asyncio.run(scenario())
        assert first == DataHello(node_id=1, column=2)
        assert isinstance(second, CodedPacket)
        assert third is None

    def test_truncated_prefix_raises(self):
        async def scenario():
            await read_message(self._reader(b"\x00\x00"))

        with pytest.raises(FramingError):
            asyncio.run(scenario())

    def test_truncated_body_raises(self):
        async def scenario():
            frame = encode_frame(KIND_DATA, encode_packet(_packet()))
            await read_message(self._reader(frame[:-3]))

        with pytest.raises(FramingError):
            asyncio.run(scenario())


class _StubWriter:
    """Just enough StreamWriter for a PacketSender that never runs."""

    def write(self, data):  # pragma: no cover - enqueue never writes
        raise AssertionError("enqueue must not touch the writer")

    def close(self):
        pass


class TestPacketSenderQueue:
    def test_drop_oldest_on_overflow(self):
        async def scenario():
            sender = PacketSender(_StubWriter(), column=0, sender_id=1, limit=3)
            for generation in range(5):
                sender.enqueue(_packet(generation=generation))
            return sender

        sender = asyncio.run(scenario())
        assert sender.stats.enqueued == 5
        assert sender.stats.dropped == 2
        # The three newest mixtures survive — RLNC makes the evicted
        # two redundant by construction.
        assert [p.generation for p in sender._queue] == [2, 3, 4]

    def test_enqueue_after_close_is_refused(self):
        async def scenario():
            sender = PacketSender(_StubWriter(), column=0, sender_id=1, limit=2)
            sender.close()
            return sender.enqueue(_packet())

        assert asyncio.run(scenario()) is False
