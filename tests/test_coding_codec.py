"""Unit tests for the encoder, decoder and recoder."""

import numpy as np
import pytest

from repro.coding import (
    Decoder,
    GenerationParams,
    Recoder,
    SourceEncoder,
    innovation_probability,
    packets_rank,
)

PARAMS = GenerationParams(generation_size=6, payload_size=24)


@pytest.fixture
def content(rng):
    return bytes(rng.integers(0, 256, size=300, dtype=np.uint8))


@pytest.fixture
def encoder(content, rng):
    return SourceEncoder(content, PARAMS, rng)


class TestEncoder:
    def test_generation_count(self, encoder, content):
        assert encoder.generation_count == PARAMS.generations_for(len(content))

    def test_emit_has_right_shape(self, encoder):
        packet = encoder.emit(0)
        assert packet.generation == 0
        assert packet.generation_size == PARAMS.generation_size
        assert packet.payload_size == PARAMS.payload_size

    def test_emit_never_zero(self, encoder):
        for _ in range(100):
            assert not encoder.emit().is_zero()

    def test_payload_consistent_with_coefficients(self, encoder):
        """Emitted payload must equal coefficients applied to the block."""
        from repro.gf.tables import MUL

        packet = encoder.emit(0)
        block = encoder.blocks[0]
        expected = np.zeros(PARAMS.payload_size, dtype=np.uint8)
        for i, c in enumerate(packet.coefficients):
            if c:
                expected ^= MUL[int(c), block.data[i]]
        assert np.array_equal(packet.payload, expected)

    def test_systematic_first(self, content, rng):
        encoder = SourceEncoder(content, PARAMS, rng, systematic_first=True)
        for i in range(PARAMS.generation_size):
            packet = encoder.emit(0)
            assert packet.is_systematic()
            assert packet.coefficients[i] == 1
        # after the originals, coded packets follow
        assert encoder.emit(0) is not None

    def test_stream(self, encoder):
        stream = encoder.stream(0)
        packets = [next(stream) for _ in range(5)]
        assert all(p.generation == 0 for p in packets)


class TestDecoder:
    def test_decodes_from_encoder(self, encoder, content, rng):
        decoder = Decoder(PARAMS, encoder.generation_count)
        while not decoder.is_complete:
            decoder.push(encoder.emit())
        assert decoder.recover(len(content)) == content

    def test_needs_exactly_generation_size_innovative(self, encoder):
        gdec = Decoder(PARAMS, encoder.generation_count).generations[0]
        innovative = 0
        while not gdec.is_complete:
            if gdec.push(encoder.emit(0)):
                innovative += 1
        assert innovative == PARAMS.generation_size
        assert gdec.rank == PARAMS.generation_size

    def test_duplicate_packet_not_innovative(self, encoder):
        decoder = Decoder(PARAMS, encoder.generation_count)
        packet = encoder.emit(0)
        assert decoder.push(packet)
        assert not decoder.push(packet.copy())

    def test_zero_packet_not_innovative(self, encoder):
        decoder = Decoder(PARAMS, encoder.generation_count)
        packet = encoder.emit(0)
        packet.coefficients[:] = 0
        packet.payload[:] = 0
        assert not decoder.push(packet)

    def test_wrong_generation_raises(self, encoder):
        gdec = Decoder(PARAMS, encoder.generation_count).generations[0]
        packet = encoder.emit(0)
        packet.generation = 1
        with pytest.raises(ValueError):
            gdec.push(packet)

    def test_unknown_generation_raises(self, encoder):
        decoder = Decoder(PARAMS, encoder.generation_count)
        packet = encoder.emit(0)
        packet.generation = 999
        with pytest.raises(ValueError):
            decoder.push(packet)

    def test_decoded_block_before_complete_raises(self, encoder):
        gdec = Decoder(PARAMS, encoder.generation_count).generations[0]
        gdec.push(encoder.emit(0))
        with pytest.raises(RuntimeError):
            gdec.decoded_block()

    def test_progress_monotone(self, encoder):
        decoder = Decoder(PARAMS, encoder.generation_count)
        last = 0.0
        for _ in range(40):
            decoder.push(encoder.emit())
            progress = decoder.progress()
            assert progress >= last
            last = progress
        assert 0.0 <= last <= 1.0

    def test_basis_packets_reproduce_rank(self, encoder):
        gdec = Decoder(PARAMS, encoder.generation_count).generations[0]
        for _ in range(4):
            gdec.push(encoder.emit(0))
        basis = gdec.basis_packets()
        assert packets_rank(basis) == gdec.rank

    def test_invalid_generation_count(self):
        with pytest.raises(ValueError):
            Decoder(PARAMS, 0)


class TestRecoder:
    def test_recoded_packets_decode(self, encoder, content, rng):
        """Decoding exclusively from a middlebox recoder must still work."""
        recoder = Recoder(PARAMS, encoder.generation_count, rng, node_id=1)
        decoder = Decoder(PARAMS, encoder.generation_count)
        guard = 0
        while not decoder.is_complete:
            recoder.receive(encoder.emit())
            packet = recoder.emit()
            if packet is not None:
                decoder.push(packet)
            guard += 1
            assert guard < 5000
        assert decoder.recover(len(content)) == content

    def test_empty_recoder_emits_none(self, rng):
        recoder = Recoder(PARAMS, 2, rng)
        assert recoder.emit() is None
        assert recoder.emit_trivial() is None

    def test_emit_stamps_origin(self, encoder, rng):
        recoder = Recoder(PARAMS, encoder.generation_count, rng, node_id=42)
        recoder.receive(encoder.emit(0))
        packet = recoder.emit(0)
        assert packet.origin == 42

    def test_recoder_never_exceeds_source_rank(self, encoder, rng):
        """Mixing cannot create information: downstream rank <= upstream."""
        recoder = Recoder(PARAMS, encoder.generation_count, rng)
        for _ in range(3):
            recoder.receive(encoder.emit(0))
        sink = Recoder(PARAMS, encoder.generation_count, rng)
        for _ in range(50):
            packet = recoder.emit(0)
            sink.receive(packet)
        assert sink.rank(0) <= recoder.rank(0)

    def test_trivial_emission_is_replay(self, encoder, rng):
        recoder = Recoder(PARAMS, encoder.generation_count, rng, node_id=3)
        recoder.receive(encoder.emit(0))
        first = recoder.emit_trivial(0)
        second = recoder.emit_trivial(0)
        assert np.array_equal(first.coefficients, second.coefficients)

    def test_pick_generation_prefers_incomplete(self, content, rng):
        encoder = SourceEncoder(content, PARAMS, rng)
        assert encoder.generation_count >= 2
        recoder = Recoder(PARAMS, encoder.generation_count, rng)
        # Fill generation 0 completely, give generation 1 a single packet.
        while not recoder.decoder.generations[0].is_complete:
            recoder.receive(encoder.emit(0))
        recoder.receive(encoder.emit(1))
        packet = recoder.emit()
        assert packet.generation == 1


class TestInnovationHelpers:
    def test_innovation_probability_extremes(self):
        assert innovation_probability(8, 8) == 0.0
        assert innovation_probability(8, 0) == pytest.approx(1.0, abs=1e-9)

    def test_innovation_probability_monotone(self):
        values = [innovation_probability(8, r) for r in range(9)]
        assert values == sorted(values, reverse=True)

    def test_packets_rank_empty(self):
        assert packets_rank([]) == 0
