"""Unit tests for the erasure-striping and flooding baselines."""

import numpy as np
import pytest

from repro.baselines import (
    FloodingSimulation,
    MDSCode,
    evaluate_erasure_overlay,
    stripes_received,
)
from repro.core import OverlayNetwork


class TestMDSCode:
    def test_encode_shape(self, rng):
        code = MDSCode(n=10, m=6)
        source = rng.integers(0, 256, size=(6, 40), dtype=np.uint8)
        coded = code.encode(source)
        assert coded.shape == (10, 40)

    def test_decode_any_m_stripes(self, rng):
        code = MDSCode(n=10, m=6)
        source = rng.integers(0, 256, size=(6, 40), dtype=np.uint8)
        coded = code.encode(source)
        for _ in range(10):
            indices = sorted(rng.choice(10, size=6, replace=False))
            recovered = code.decode(list(indices), coded[indices])
            assert np.array_equal(recovered, source)

    def test_too_few_stripes_raises(self, rng):
        code = MDSCode(n=6, m=4)
        source = rng.integers(0, 256, size=(4, 8), dtype=np.uint8)
        coded = code.encode(source)
        with pytest.raises(ValueError):
            code.decode([0, 1, 2], coded[[0, 1, 2]])

    def test_wrong_source_shape_raises(self, rng):
        code = MDSCode(n=6, m=4)
        with pytest.raises(ValueError):
            code.encode(rng.integers(0, 256, size=(5, 8), dtype=np.uint8))

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            MDSCode(n=4, m=5)
        with pytest.raises(ValueError):
            MDSCode(n=300, m=4)


class TestStripesReceived:
    def test_all_alive_without_failures(self, small_net):
        for node in small_net.matrix.node_ids[:10]:
            stripes = stripes_received(small_net.matrix, node, frozenset())
            assert len(stripes) == 3

    def test_dead_upstream_kills_stripe(self, rng):
        net = OverlayNetwork(k=6, d=2, seed=41)
        net.grow(2)
        # make node 1 depend on node 0 somewhere, if columns overlap
        first, second = net.matrix.node_ids
        shared = net.matrix.columns_of(first) & net.matrix.columns_of(second)
        stripes = stripes_received(net.matrix, second, failed={first})
        expected = 2 - len(shared)
        assert len(stripes) == expected

    def test_own_failure_irrelevant_to_its_stripes(self, small_net):
        node = small_net.matrix.node_ids[5]
        with_self = stripes_received(small_net.matrix, node, failed={node})
        assert len(with_self) == 3  # only *upstream* failures matter


class TestEvaluateErasureOverlay:
    def test_no_failures_everyone_decodes(self, small_net):
        outcome = evaluate_erasure_overlay(small_net.matrix, frozenset(), required=3)
        assert outcome.decode_fraction == 1.0
        assert outcome.mean_stripe_count == pytest.approx(3.0)

    def test_redundancy_raises_decode_rate(self, small_net):
        failed = set(small_net.matrix.node_ids[:6])
        strict = evaluate_erasure_overlay(small_net.matrix, failed, required=3)
        relaxed = evaluate_erasure_overlay(small_net.matrix, failed, required=2)
        assert relaxed.decode_fraction >= strict.decode_fraction

    def test_empty_population(self):
        net = OverlayNetwork(k=6, d=2, seed=42)
        outcome = evaluate_erasure_overlay(net.matrix, frozenset(), required=1)
        assert outcome.decode_fraction == 1.0


class TestFloodingSimulation:
    def _net(self, seed=43):
        net = OverlayNetwork(k=10, d=2, seed=seed)
        net.grow(20)
        return net

    def test_completes_eventually(self):
        sim = FloodingSimulation(self._net(), packet_count=15, seed=1)
        report = sim.run_until_complete(max_slots=2000)
        assert report.completion_fraction == 1.0
        assert report.slots < 2000

    def test_duplicates_waste_bandwidth(self):
        sim = FloodingSimulation(self._net(), packet_count=15, seed=2)
        report = sim.run_until_complete(max_slots=2000)
        assert report.duplicate_fraction > 0.2

    def test_slower_than_rlnc(self):
        """The headline gap: flooding pays the coupon-collector tax."""
        from repro.coding import GenerationParams
        from repro.sim import BroadcastSimulation

        packet_count = 24
        flood = FloodingSimulation(self._net(seed=44), packet_count, seed=3)
        flood_report = flood.run_until_complete(max_slots=3000)

        rng = np.random.default_rng(0)
        content = bytes(
            rng.integers(0, 256, size=packet_count * 32, dtype=np.uint8)
        )
        rlnc = BroadcastSimulation(
            self._net(seed=44), content,
            GenerationParams(generation_size=packet_count, payload_size=32),
            seed=3,
        )
        rlnc_report = rlnc.run_until_complete(max_slots=3000)
        assert rlnc_report.completion_fraction == 1.0
        assert max(rlnc_report.completion_slots()) < flood_report.slots

    def test_progress_metric(self):
        sim = FloodingSimulation(self._net(), packet_count=30, seed=4)
        sim.step()
        report = sim.report()
        assert 0.0 <= report.mean_unique_fraction <= 1.0

    def test_invalid_packet_count(self):
        with pytest.raises(ValueError):
            FloodingSimulation(self._net(), packet_count=0)
