"""Unit tests for §5 congestion handling."""

import pytest

from repro.core import CongestionController, CoordinationServer


@pytest.fixture
def server(rng):
    server = CoordinationServer(k=10, d=3, rng=rng)
    for _ in range(8):
        server.hello()
    return server


@pytest.fixture
def controller(server):
    return CongestionController(server, drop_after=2, restore_after=3)


class TestDropPolicy:
    def test_no_drop_before_threshold(self, controller):
        assert controller.observe(0, congested=True) is None
        assert controller.server.matrix.row(0).degree == 3

    def test_drop_at_threshold(self, controller):
        controller.observe(0, congested=True)
        event = controller.observe(0, congested=True)
        assert event is not None and event.action == "drop"
        assert controller.server.matrix.row(0).degree == 2
        assert controller.shed_count(0) == 1

    def test_calm_resets_streak(self, controller):
        controller.observe(0, congested=True)
        controller.observe(0, congested=False)
        assert controller.observe(0, congested=True) is None

    def test_min_degree_floor(self, server):
        controller = CongestionController(server, drop_after=1, restore_after=100,
                                          min_degree=2)
        assert controller.observe(0, congested=True).action == "drop"
        assert controller.observe(0, congested=True) is None  # at the floor
        assert server.matrix.row(0).degree == 2

    def test_consecutive_drops(self, server):
        controller = CongestionController(server, drop_after=1, restore_after=100)
        controller.observe(0, congested=True)
        controller.observe(0, congested=True)
        assert server.matrix.row(0).degree == 1
        assert controller.shed_count(0) == 2


class TestRestorePolicy:
    def test_restore_after_calm(self, controller):
        controller.observe(0, congested=True)
        controller.observe(0, congested=True)  # drop
        for _ in range(2):
            assert controller.observe(0, congested=False) is None
        event = controller.observe(0, congested=False)
        assert event is not None and event.action == "restore"
        assert controller.server.matrix.row(0).degree == 3

    def test_no_restore_above_nominal(self, controller):
        for _ in range(5):
            assert controller.observe(0, congested=False) is None
        assert controller.server.matrix.row(0).degree == 3

    def test_events_recorded(self, controller):
        controller.observe(0, congested=True)
        controller.observe(0, congested=True)
        for _ in range(3):
            controller.observe(0, congested=False)
        actions = [e.action for e in controller.events]
        assert actions == ["drop", "restore"]

    def test_matrix_stays_consistent(self, controller):
        for round_ in range(20):
            congested = round_ % 3 == 0
            for node in (0, 1, 2):
                controller.observe(node, congested)
        controller.server.matrix.check_invariants()


class TestValidation:
    def test_unknown_node_raises(self, controller):
        with pytest.raises(KeyError):
            controller.observe(999, congested=True)

    def test_invalid_parameters(self, server):
        with pytest.raises(ValueError):
            CongestionController(server, min_degree=0)
        with pytest.raises(ValueError):
            CongestionController(server, drop_after=0)
