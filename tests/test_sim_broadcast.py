"""Unit tests for the slotted packet-level broadcast simulation."""

import numpy as np

from repro.coding import GenerationParams
from repro.core import OverlayNetwork
from repro.sim import BroadcastSimulation, LossModel, NodeRole

PARAMS = GenerationParams(generation_size=6, payload_size=32)


def make_sim(net=None, content_size=400, seed=9, **kwargs):
    net = net or _default_net()
    rng = np.random.default_rng(1)
    content = bytes(rng.integers(0, 256, size=content_size, dtype=np.uint8))
    return BroadcastSimulation(net, content, PARAMS, seed=seed, **kwargs), net


def _default_net():
    net = OverlayNetwork(k=10, d=2, seed=3)
    net.grow(25)
    return net


class TestHappyPath:
    def test_everyone_completes_and_decodes(self):
        sim, net = make_sim()
        report = sim.run_until_complete(max_slots=800)
        assert report.completion_fraction == 1.0
        assert all(n.decoded_ok for n in report.nodes)

    def test_completion_respects_pipeline_depth(self):
        """A node cannot finish before (its depth + needed packets)."""
        sim, net = make_sim()
        report = sim.run_until_complete(max_slots=800)
        depths = net.graph().depths_from_server()
        for node in report.nodes:
            # need at least depth-1 slots to hear anything plus rank slots
            assert node.completed_at is not None
            assert node.completed_at + 1 >= depths[node.node_id]

    def test_innovative_counts_bounded_by_needed(self):
        sim, _ = make_sim()
        report = sim.run_until_complete(max_slots=800)
        for node in report.nodes:
            assert node.innovative == node.needed
            assert node.received >= node.innovative

    def test_goodput_positive(self):
        sim, _ = make_sim()
        report = sim.run_until_complete(max_slots=800)
        assert report.mean_goodput > 0.0

    def test_server_emits_k_per_slot(self):
        sim, net = make_sim()
        sim.run(10)
        assert sim.server_packets == 10 * net.k


class TestLossAndFailures:
    def test_loss_delays_but_still_completes(self):
        lossless, _ = make_sim(seed=5)
        lossy, _ = make_sim(seed=5, loss=LossModel(0.15))
        report_a = lossless.run_until_complete(max_slots=2000)
        report_b = lossy.run_until_complete(max_slots=2000)
        assert report_b.completion_fraction == 1.0
        assert max(report_b.completion_slots()) >= max(report_a.completion_slots())
        assert report_b.link_stats.delivery_ratio < 0.95

    def test_failed_node_receives_nothing(self):
        sim, net = make_sim()
        victim = net.matrix.node_ids[-1]  # bottom node: nobody depends on it
        net.fail(victim)
        sim.run(30)
        report = sim.report(nodes=[victim])
        assert report.nodes[0].received == 0

    def test_failure_mid_run_then_repair_recovers(self):
        sim, net = make_sim(content_size=1200)
        sim.run(3)
        victim = net.matrix.node_ids[2]
        net.fail(victim)
        sim.run(10)
        net.repair(victim)  # victim spliced out; children reattach
        report = sim.run_until_complete(max_slots=2000)
        assert report.completion_fraction == 1.0
        assert all(n.decoded_ok for n in report.nodes)

    def test_join_mid_broadcast_catches_up(self):
        sim, net = make_sim(content_size=600)
        sim.run(5)
        grant = net.join()
        report = sim.run_until_complete(max_slots=2000)
        late = [n for n in report.nodes if n.node_id == grant.node_id]
        assert late and late[0].completed_at is not None
        assert late[0].decoded_ok


class TestAttacks:
    def test_jammers_poison_downstream(self):
        net = _default_net()
        jammers = {net.matrix.node_ids[1]: NodeRole.JAMMER}
        sim, _ = make_sim(net=net, roles=jammers)
        report = sim.run_until_complete(max_slots=600)
        assert report.poisoned_fraction > 0.0

    def test_entropy_attackers_reduce_innovation(self):
        net_honest = _default_net()
        honest_sim, _ = make_sim(net=net_honest, content_size=1200)
        honest = honest_sim.run_until_complete(max_slots=1500)

        net_attacked = _default_net()
        top = net_attacked.matrix.node_ids[:5]
        roles = {n: NodeRole.ENTROPY_ATTACKER for n in top}
        attacked_sim, _ = make_sim(net=net_attacked, content_size=1200, roles=roles)
        attacked = attacked_sim.run_until_complete(max_slots=1500)

        def efficiency(report):
            received = sum(n.received for n in report.nodes)
            innovative = sum(n.innovative for n in report.nodes)
            return innovative / received if received else 1.0

        assert efficiency(attacked) < efficiency(honest)

    def test_attackers_excluded_from_default_report(self):
        net = _default_net()
        roles = {net.matrix.node_ids[0]: NodeRole.ENTROPY_ATTACKER}
        sim, _ = make_sim(net=net, roles=roles)
        sim.run(5)
        report = sim.report()
        assert all(n.node_id != net.matrix.node_ids[0] for n in report.nodes)


class TestSystematicMode:
    def test_systematic_completes(self):
        sim, _ = make_sim(systematic=True)
        report = sim.run_until_complete(max_slots=800)
        assert report.completion_fraction == 1.0
        assert all(n.decoded_ok for n in report.nodes)
