"""Unit and property tests for the sans-IO data-plane engines.

The :class:`~repro.dataplane.SourceEngine` / :class:`RelayEngine` pair
owns every data-plane decision that used to live inline in three
drivers; these tests pin the contract each driver relies on — the
receive gate, round-robin scheduling, push fan-out under both forward
policies, the pull-mode innovation-credit translation, seed-bursts,
idle fills — plus the two behaviour claims the ``innovative`` policy
is sold on:

* on clean links it never delays the swarm full-rank slot versus
  ``eager`` (hypothesis property: recoded packets lie inside the
  sender's span, so peer-to-peer transfers never grow the swarm's
  union span — only server emissions do, and those are policy-blind);
* it sends strictly fewer data packets once ranks saturate.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding import GenerationParams, Recoder, SourceEncoder
from repro.core import OverlayNetwork
from repro.dataplane import (
    FORWARD_POLICIES,
    ChildAttached,
    ChildDetached,
    EagerPolicy,
    EmitRound,
    EmitToChildren,
    EngineLog,
    IdlePoll,
    Ingested,
    InnovativePolicy,
    MarkComplete,
    PacketArrived,
    PullEmit,
    RelayEngine,
    RequestIdle,
    SourceEngine,
    replay,
    resolve_policy,
)
from repro.sim import BroadcastSimulation

PARAMS = GenerationParams(generation_size=4, payload_size=8)
GENERATIONS = 2
NEEDED = GENERATIONS * PARAMS.generation_size


def make_encoder(seed=0):
    rng = np.random.default_rng(seed)
    size = GENERATIONS * PARAMS.generation_size * PARAMS.payload_size
    content = bytes(rng.integers(0, 256, size=size, dtype=np.uint8))
    return SourceEncoder(content, PARAMS, rng)


def make_relay(seed=1, **kwargs):
    recoder = Recoder(PARAMS, GENERATIONS, np.random.default_rng(seed), 7)
    return RelayEngine(recoder, **kwargs)


def feed_packets(engine, count, *, seed=0):
    """Deliver ``count`` round-robin source packets; return them."""
    encoder = make_encoder(seed)
    packets = [
        encoder.emit(i % GENERATIONS) for i in range(count)
    ]
    for packet in packets:
        engine.handle(PacketArrived(packet))
    return packets


class TestPolicies:
    def test_catalogue(self):
        assert FORWARD_POLICIES == ("eager", "innovative")

    def test_resolve_by_name_returns_singletons(self):
        assert resolve_policy("eager") is resolve_policy("eager")
        assert isinstance(resolve_policy("eager"), EagerPolicy)
        assert isinstance(resolve_policy("innovative"), InnovativePolicy)

    def test_resolve_passes_instances_through(self):
        policy = InnovativePolicy()
        assert resolve_policy(policy) is policy

    def test_resolve_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown forward_policy"):
            resolve_policy("flooding")

    def test_verdicts(self):
        eager, gated = resolve_policy("eager"), resolve_policy("innovative")
        assert eager.forward_on(False) and eager.forward_on(True)
        assert gated.forward_on(True) and not gated.forward_on(False)
        assert gated.wants_idle and not eager.wants_idle
        assert eager.pull_without_credit and not gated.pull_without_credit


class TestSourceEngine:
    def test_rounds_serve_generations_round_robin(self):
        engine = SourceEngine(make_encoder())
        generations = []
        for _ in range(4):
            (effect,) = engine.handle(EmitRound(targets=("a",)))
            generations.append(effect.packets[0].generation)
        assert generations == [0, 1, 0, 1]
        assert engine.rounds == 4
        assert engine.packets_sent == 4

    def test_empty_round_still_advances_schedule(self):
        """Generation scheduling is time-based: a round with nobody
        attached produces nothing but still consumes its slot."""
        engine = SourceEngine(make_encoder())
        assert engine.handle(EmitRound(targets=())) == []
        assert engine.rounds == 1
        assert engine.packets_sent == 0
        (effect,) = engine.handle(EmitRound(targets=("a",)))
        assert effect.packets[0].generation == 1

    def test_batched_and_scalar_rounds_are_rng_identical(self):
        batched = SourceEngine(make_encoder(3), batched=True)
        scalar = SourceEngine(make_encoder(3), batched=False)
        targets = ("a", "b", "c")
        for _ in range(3):
            (eb,) = batched.handle(EmitRound(targets=targets))
            (es,) = scalar.handle(EmitRound(targets=targets))
            for pb, ps in zip(eb.packets, es.packets):
                assert pb.generation == ps.generation
                assert bytes(pb.coefficients) == bytes(ps.coefficients)
                assert bytes(pb.payload) == bytes(ps.payload)

    def test_pull_emit_answers_one_packet(self):
        engine = SourceEngine(make_encoder())
        (effect,) = engine.handle(PullEmit("edge"))
        assert isinstance(effect, EmitToChildren)
        assert effect.children == ("edge",)
        assert effect.count == 1
        assert engine.packets_sent == 1
        assert engine.rounds == 0

    def test_attach_seed_burst(self):
        silent = SourceEngine(make_encoder())
        assert silent.handle(ChildAttached("c")) == []
        bursty = SourceEngine(make_encoder(), seed_burst=2)
        (effect,) = bursty.handle(ChildAttached("c"))
        assert effect.children == ("c", "c")
        assert effect.count == 2
        assert bursty.packets_sent == 2

    def test_rejects_negative_seed_burst(self):
        with pytest.raises(ValueError):
            SourceEngine(make_encoder(), seed_burst=-1)


class TestRelayReceiveGate:
    def test_innovative_arrivals_raise_rank(self):
        engine = make_relay()
        packets = feed_packets(engine, 2)
        assert engine.received == 2
        assert engine.innovative == 2
        assert engine.rank == 2
        # Re-delivering an already-absorbed packet is not innovative.
        effects = engine.handle(PacketArrived(packets[0]))
        assert effects == [Ingested(packets[0].generation, False, 2)]
        assert engine.received == 3
        assert engine.innovative == 2

    def test_rank_mirror_matches_decoder(self):
        engine = make_relay()
        feed_packets(engine, NEEDED + 3)
        assert engine.rank == engine.recoder.decoder.total_rank == NEEDED

    def test_mark_complete_fires_exactly_once(self):
        engine = make_relay()
        log = EngineLog()
        engine.log = log
        feed_packets(engine, NEEDED + 2)
        completions = [
            e for e in log.effect_trace() if isinstance(e, MarkComplete)
        ]
        assert completions == [MarkComplete(NEEDED)]
        assert engine.completed
        assert engine.needed == NEEDED

    def test_pull_mode_arrivals_only_ingest(self):
        """No attached children (the simulator shape): an arrival never
        fans out, whatever the policy."""
        for policy in FORWARD_POLICIES:
            engine = make_relay(policy=policy)
            encoder = make_encoder()
            effects = engine.handle(PacketArrived(encoder.emit(0)))
            assert [type(e) for e in effects] == [Ingested]
            assert engine.forwarded == 0


class TestRelayPushFanOut:
    def attach_two(self, engine):
        engine.handle(ChildAttached("a", column=0))
        engine.handle(ChildAttached("b", column=1))
        return engine.forwarded  # seed-burst packets

    def test_eager_forwards_every_arrival(self, policy="eager"):
        engine = make_relay(policy=policy, batched=False)
        seeded = self.attach_two(engine)
        packets = feed_packets(engine, 1)
        effects = engine.handle(PacketArrived(packets[0]))  # duplicate
        emits = [e for e in effects if isinstance(e, EmitToChildren)]
        assert emits and emits[0].children == ("a", "b")
        assert engine.forwarded == seeded + 2 + 2

    def test_innovative_withholds_duplicates(self):
        engine = make_relay(policy="innovative", batched=False)
        seeded = self.attach_two(engine)
        packets = feed_packets(engine, 1)
        assert engine.forwarded == seeded + 2
        effects = engine.handle(PacketArrived(packets[0]))  # duplicate
        assert not any(isinstance(e, EmitToChildren) for e in effects)
        assert engine.forwarded == seeded + 2

    def test_innovative_attach_requests_idle_fill(self):
        engine = make_relay(policy="innovative")
        effects = engine.handle(ChildAttached("a", column=0))
        assert any(e == RequestIdle("a") for e in effects)
        eager = make_relay(policy="eager")
        assert not any(
            isinstance(e, RequestIdle)
            for e in eager.handle(ChildAttached("a", column=0))
        )

    def test_attach_seed_burst_and_reattach_order(self):
        engine = make_relay(seed_burst=2, batched=False)
        feed_packets(engine, 3)
        (effect,) = engine.handle(ChildAttached("a", column=0))
        assert effect.children == ("a", "a")
        engine.handle(ChildAttached("b", column=1))
        assert engine.children == ("a", "b")
        # Re-attach moves the child to the end of the fan-out order,
        # exactly like the live driver's pump dict.
        engine.handle(ChildAttached("a", column=0))
        assert engine.children == ("b", "a")
        engine.handle(ChildDetached("b"))
        assert engine.children == ("a",)

    def test_batched_and_scalar_fanout_count_identically(self):
        counts = {}
        for batched in (True, False):
            engine = make_relay(seed=5, batched=batched)
            self.attach_two(engine)
            feed_packets(engine, 4, seed=6)
            counts[batched] = engine.forwarded
        assert counts[True] == counts[False]

    def test_idle_poll_is_not_fanout(self):
        engine = make_relay(policy="innovative", batched=False)
        feed_packets(engine, 2)
        before = engine.forwarded
        (effect,) = engine.handle(IdlePoll("a"))
        assert effect.children == ("a",)
        assert engine.idle_emits == 1
        assert engine.forwarded == before


class TestRelayPullCredit:
    def test_eager_pull_is_unconditional(self):
        engine = make_relay(policy="eager")
        feed_packets(engine, 1)
        for _ in range(5):
            assert engine.handle(PullEmit(9)) != []
        assert engine.forwarded == 5

    def test_innovative_pull_takes_one_credit_per_innovation(self):
        """Pull mode mirrors push mode's one-forward-per-innovative-
        arrival-per-child: each edge may take ``seed_burst`` packets
        plus one per innovative ingest, then it goes silent until
        something innovative lands."""
        engine = make_relay(policy="innovative", seed_burst=1)
        packets = feed_packets(engine, 2)
        for _ in range(1 + 2):  # seed allowance + two innovations
            assert engine.handle(PullEmit(9)) != []
        assert engine.handle(PullEmit(9)) == []
        # A duplicate arrival grants nothing ...
        engine.handle(PacketArrived(packets[0]))
        assert engine.handle(PullEmit(9)) == []
        # ... fresh innovative arrivals re-open the edge, one each.
        before = engine.innovative
        feed_packets(engine, 3, seed=11)
        for _ in range(engine.innovative - before):
            assert engine.handle(PullEmit(9)) != []
        assert engine.handle(PullEmit(9)) == []

    def test_seed_burst_sizes_the_unconditional_allowance(self):
        engine = make_relay(policy="innovative", seed_burst=3)
        feed_packets(engine, 1)  # rank 1 grants one credit on top
        for _ in range(3 + 1):
            assert engine.handle(PullEmit(9)) != []
        assert engine.handle(PullEmit(9)) == []
        assert engine.forwarded == 4

    def test_credit_is_per_destination(self):
        engine = make_relay(policy="innovative", seed_burst=1)
        feed_packets(engine, 1)
        assert engine.handle(PullEmit("x")) != []
        assert engine.handle(PullEmit("x")) != []
        assert engine.handle(PullEmit("x")) == []
        # A different edge still holds its own seed + credit allowance.
        assert engine.handle(PullEmit("y")) != []
        assert engine.handle(PullEmit("y")) != []
        assert engine.handle(PullEmit("y")) == []


class TestReplayDeterminism:
    """Replaying a recorded event trace into a fresh, identically-seeded
    engine reproduces the effect trace exactly — the data-plane mirror
    of the control-plane determinism property (the engines draw RNG only
    through the codec state they are handed, so seeding the codec seeds
    the whole machine)."""

    @settings(max_examples=10, deadline=None)
    @given(
        policy=st.sampled_from(FORWARD_POLICIES),
        batched=st.booleans(),
        ops=st.lists(st.integers(min_value=0, max_value=4),
                     min_size=5, max_size=40),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_relay_replay_reproduces_effect_trace(
        self, policy, batched, ops, seed,
    ):
        encoder = make_encoder(seed)
        events = []
        for index, op in enumerate(ops):
            if op == 0:
                events.append(
                    PacketArrived(encoder.emit(index % GENERATIONS)))
            elif op == 1:
                events.append(PullEmit(index % 3))
            elif op == 2:
                events.append(ChildAttached(f"c{index % 2}", column=index % 2))
            elif op == 3:
                events.append(ChildDetached(f"c{index % 2}"))
            else:
                events.append(IdlePoll(f"c{index % 2}"))
        recorded = make_relay(seed=seed + 1, policy=policy, batched=batched)
        log = EngineLog()
        recorded.log = log
        for event in events:
            recorded.handle(event)
        fresh = make_relay(seed=seed + 1, policy=policy, batched=batched)
        replayed = replay(fresh, events)
        assert [repr(effect) for effect in replayed] == log.effect_reprs()
        assert fresh.received == recorded.received
        assert fresh.innovative == recorded.innovative
        assert fresh.forwarded == recorded.forwarded
        assert fresh.rank == recorded.rank

    def test_source_replay_reproduces_effect_trace(self):
        events = [
            EmitRound(targets=("a", "b")),
            PullEmit("x"),
            EmitRound(targets=()),
            ChildAttached("c"),
            EmitRound(targets=("c",)),
        ]
        recorded = SourceEngine(make_encoder(9), seed_burst=2)
        log = EngineLog()
        recorded.log = log
        for event in events:
            recorded.handle(event)
        fresh = SourceEngine(make_encoder(9), seed_burst=2)
        replayed = replay(fresh, events)
        assert [repr(effect) for effect in replayed] == log.effect_reprs()
        assert fresh.packets_sent == recorded.packets_sent
        assert fresh.rounds == recorded.rounds


def _make_sim(forward_policy, *, k, d, peers, seed, net_seed):
    net = OverlayNetwork(k=k, d=d, seed=net_seed)
    net.grow(peers)
    rng = np.random.default_rng(net_seed + 1)
    size = GENERATIONS * PARAMS.generation_size * PARAMS.payload_size
    content = bytes(rng.integers(0, 256, size=size, dtype=np.uint8))
    return BroadcastSimulation(
        net, content, PARAMS, seed=seed, forward_policy=forward_policy,
    )


def _full_rank_slot(sim, budget=400):
    for _ in range(budget):
        if sim.swarm_has_full_rank():
            return sim.slot
        sim.step()
    return None


class TestPolicyBehaviour:
    @settings(max_examples=12, deadline=None)
    @given(
        k=st.integers(min_value=2, max_value=4),
        peers=st.integers(min_value=4, max_value=10),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        net_seed=st.integers(min_value=0, max_value=100),
    )
    def test_innovative_never_delays_swarm_full_rank(
        self, k, peers, seed, net_seed,
    ):
        """On clean links, recoded peer-to-peer packets lie inside the
        sender's span and so never grow the swarm's union span; only
        server emissions do — and those are policy-blind.  Withholding
        non-innovative forwards therefore cannot delay the §6
        self-sustainability slot."""
        eager = _make_sim(
            "eager", k=k, d=2, peers=peers, seed=seed, net_seed=net_seed)
        gated = _make_sim(
            "innovative", k=k, d=2, peers=peers, seed=seed, net_seed=net_seed)
        eager_slot = _full_rank_slot(eager)
        gated_slot = _full_rank_slot(gated)
        assert eager_slot is not None and gated_slot is not None
        assert gated_slot <= eager_slot

    def test_innovative_sends_fewer_packets_than_eager(self):
        """Once ranks saturate, ``eager`` keeps pushing dependent
        mixtures every slot while ``innovative`` falls silent — the
        whole point of the policy."""
        totals = {}
        completed = {}
        for policy in FORWARD_POLICIES:
            sim = _make_sim(
                policy, k=3, d=2, peers=8, seed=13, net_seed=2)
            sim.run(120)
            totals[policy] = sum(
                engine.forwarded + engine.idle_emits
                for engine in sim.behavior._engines.values()
            )
            report = sim.report()
            completed[policy] = report.completion_fraction
        assert completed["eager"] == completed["innovative"] == 1.0
        assert totals["innovative"] < totals["eager"]
