"""Model-based stateful test: indexed membership vs a naive reference.

The coordination server keeps derived membership state — the working
set, the failure set, the registry — in incrementally-maintained
indexes so queries never rescan the registry at 10k peers.  Index
bookkeeping is exactly the kind of code that rots silently: one missed
``discard`` on an obscure path and ``working_nodes`` disagrees with
the registry forever after.

This machine replays every membership verb against both the real
server and a deliberately naive reference model (one dict, statuses
recomputed by full scan on every query) and requires the two to agree
after every step.  The reference is too slow to ship and trivially
correct — which is the point: any divergence is a bug in the indexed
implementation, not in the model.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core import CoordinationServer
from repro.core.matrix import SERVER

K, D = 8, 2


class NaiveMembership:
    """The obviously-correct model: one dict, scans for every query."""

    def __init__(self) -> None:
        self.next_id = 0
        self.status: dict[int, str] = {}  # node_id -> "working" | "failed"

    def hello(self) -> int:
        node_id = self.next_id
        self.next_id += 1
        self.status[node_id] = "working"
        return node_id

    def goodbye(self, node_id: int) -> None:
        assert self.status[node_id] == "working"
        del self.status[node_id]

    def fail(self, node_id: int) -> None:
        self.status[node_id] = "failed"

    def repair(self, node_id: int) -> None:
        assert self.status[node_id] == "failed"
        del self.status[node_id]

    @property
    def members(self) -> set[int]:
        return set(self.status)

    @property
    def working(self) -> list[int]:
        return sorted(n for n, s in self.status.items() if s == "working")

    @property
    def failed(self) -> set[int]:
        return {n for n, s in self.status.items() if s == "failed"}


class MembershipModelMachine(RuleBasedStateMachine):
    insert_mode = "append"

    def __init__(self):
        super().__init__()
        self.rng = np.random.default_rng(0xBEE5)
        self.server = CoordinationServer(
            K, D, self.rng, insert_mode=self.insert_mode
        )
        self.model = NaiveMembership()

    # ------------------------------------------------------------------
    # Rules: every verb hits both implementations.

    @rule()
    def hello(self):
        if self.server.population >= 64:
            return
        grant = self.server.hello()
        expected = self.model.hello()
        assert grant.node_id == expected

    @rule(pick=st.integers(min_value=0, max_value=10**6))
    def goodbye(self, pick):
        working = self.model.working
        if not working:
            return
        victim = working[pick % len(working)]
        self.server.goodbye(victim)
        self.model.goodbye(victim)

    @rule(pick=st.integers(min_value=0, max_value=10**6))
    def fail(self, pick):
        working = self.model.working
        if not working:
            return
        victim = working[pick % len(working)]
        self.server.fail(victim)
        self.model.fail(victim)

    @rule(pick=st.integers(min_value=0, max_value=10**6))
    def repair_one(self, pick):
        failed = sorted(self.model.failed)
        if not failed:
            return
        victim = failed[pick % len(failed)]
        self.server.repair(victim)
        self.model.repair(victim)

    @rule()
    def repair_all(self):
        self.server.repair_all()
        for victim in sorted(self.model.failed):
            self.model.repair(victim)

    @rule(pick=st.integers(min_value=0, max_value=10**6))
    def complain(self, pick):
        """Complaints must validate against the *model's* failure set."""
        working = self.model.working
        if not working:
            return
        reporter = working[pick % len(working)]
        columns = sorted(self.server.matrix.columns_of(reporter))
        column = columns[pick % len(columns)]
        suspect = self.server.matrix.parent_in_column(reporter, column)
        complaint = self.server.complain(reporter, column)
        if suspect == SERVER or suspect not in self.model.failed:
            assert complaint is None
        else:
            assert complaint is not None
            assert complaint.suspect == suspect

    # ------------------------------------------------------------------
    # Invariants: the indexed state must match a full naive scan.

    @invariant()
    def registry_matches_model(self):
        assert set(self.server.registry) == self.model.members

    @invariant()
    def working_index_matches_scan(self):
        assert sorted(self.server.working_nodes) == self.model.working
        assert self.server.working_count == len(self.model.working)

    @invariant()
    def failed_set_matches_model(self):
        assert set(self.server.failed) == self.model.failed

    @invariant()
    def is_working_agrees_pointwise(self):
        for node_id in self.model.members:
            assert self.server.is_working(node_id) == (
                self.model.status[node_id] == "working"
            )
        # And a few ids that must NOT be present any more.
        for node_id in range(max(0, self.model.next_id - 3), self.model.next_id):
            if node_id not in self.model.members:
                assert not self.server.is_working(node_id)


class UniformMembershipModelMachine(MembershipModelMachine):
    """Same model, uniform insertion (the indexed candidate sampler)."""

    insert_mode = "uniform"


TestMembershipModel = MembershipModelMachine.TestCase
TestMembershipModel.settings = settings(
    max_examples=30, stateful_step_count=40, deadline=None
)

TestUniformMembershipModel = UniformMembershipModelMachine.TestCase
TestUniformMembershipModel.settings = settings(
    max_examples=30, stateful_step_count=40, deadline=None
)
