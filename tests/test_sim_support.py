"""Unit tests for RNG streams and loss models."""

import numpy as np
import pytest

from repro.sim import LinkStats, LossModel, RngStreams, make_rng


class TestRngStreams:
    def test_same_seed_same_streams(self):
        a = RngStreams(7).get("coding").integers(0, 1000, size=5)
        b = RngStreams(7).get("coding").integers(0, 1000, size=5)
        assert np.array_equal(a, b)

    def test_different_names_independent(self):
        streams = RngStreams(7)
        a = streams.get("coding").integers(0, 1000, size=5)
        b = streams.get("loss").integers(0, 1000, size=5)
        assert not np.array_equal(a, b)

    def test_stream_is_cached(self):
        streams = RngStreams(7)
        assert streams.get("x") is streams.get("x")

    def test_different_seeds_differ(self):
        a = RngStreams(1).get("s").integers(0, 10**6)
        b = RngStreams(2).get("s").integers(0, 10**6)
        assert a != b

    def test_make_rng_passthrough(self):
        rng = np.random.default_rng(0)
        assert make_rng(rng) is rng
        assert isinstance(make_rng(5), np.random.Generator)


class TestLossModel:
    def test_zero_loss_always_delivers(self, rng):
        model = LossModel(0.0)
        assert all(model.delivers(rng) for _ in range(100))

    def test_loss_rate_respected(self, rng):
        model = LossModel(0.3)
        delivered = sum(model.delivers(rng) for _ in range(10_000))
        assert 0.65 < delivered / 10_000 < 0.75

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            LossModel(1.0)
        with pytest.raises(ValueError):
            LossModel(-0.1)


class TestLinkStats:
    def test_ratio(self):
        stats = LinkStats()
        stats.record(True)
        stats.record(True)
        stats.record(False)
        assert stats.attempted == 3
        assert stats.delivered == 2
        assert stats.delivery_ratio == pytest.approx(2 / 3)

    def test_empty_ratio_is_one(self):
        assert LinkStats().delivery_ratio == 1.0
