"""Unit tests for the thread matrix M."""

import pytest

from repro.core import SERVER, AppendKeys, ThreadMatrix, UniformKeys


@pytest.fixture
def matrix(rng):
    m = ThreadMatrix(k=6)
    m.join(0, 2, rng, columns=[0, 1])
    m.join(1, 2, rng, columns=[1, 2])
    m.join(2, 2, rng, columns=[0, 2])
    return m


class TestJoin:
    def test_row_count(self, matrix):
        assert len(matrix) == 3
        assert 0 in matrix and 3 not in matrix

    def test_row_has_d_ones(self, matrix):
        for node_id in (0, 1, 2):
            assert matrix.row(node_id).degree == 2

    def test_random_columns_distinct(self, rng):
        m = ThreadMatrix(k=8)
        for node_id in range(50):
            row = m.join(node_id, 3, rng)
            assert len(row.columns) == 3
        m.check_invariants()

    def test_duplicate_node_raises(self, matrix, rng):
        with pytest.raises(ValueError):
            matrix.join(0, 2, rng)

    def test_bad_degree_raises(self, rng):
        m = ThreadMatrix(k=4)
        with pytest.raises(ValueError):
            m.join(0, 0, rng)
        with pytest.raises(ValueError):
            m.join(0, 5, rng)

    def test_explicit_columns_validation(self, rng):
        m = ThreadMatrix(k=4)
        with pytest.raises(ValueError):
            m.join(0, 2, rng, columns=[1, 1])
        with pytest.raises(ValueError):
            m.join(0, 2, rng, columns=[1])
        with pytest.raises(ValueError):
            m.join(0, 2, rng, columns=[1, 9])

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            ThreadMatrix(k=0)


class TestChainsAndNeighbours:
    def test_column_chain_order(self, matrix):
        assert matrix.column_chain(0) == [0, 2]
        assert matrix.column_chain(1) == [0, 1]
        assert matrix.column_chain(2) == [1, 2]
        assert matrix.column_chain(3) == []

    def test_hanging_owner(self, matrix):
        assert matrix.hanging_owner(0) == 2
        assert matrix.hanging_owner(1) == 1
        assert matrix.hanging_owner(3) == SERVER
        owners = matrix.hanging_owners()
        assert owners == [2, 1, 2, SERVER, SERVER, SERVER]

    def test_parents(self, matrix):
        assert matrix.parents_of(0) == {0: SERVER, 1: SERVER}
        assert matrix.parents_of(1) == {1: 0, 2: SERVER}
        assert matrix.parents_of(2) == {0: 0, 2: 1}

    def test_children(self, matrix):
        assert matrix.children_of(0) == {0: 2, 1: 1}
        assert matrix.children_of(2) == {0: None, 2: None}

    def test_parent_in_missing_column_raises(self, matrix):
        with pytest.raises(KeyError):
            matrix.parent_in_column(0, 5)

    def test_node_ids_in_key_order(self, matrix):
        assert matrix.node_ids == [0, 1, 2]


class TestEdges:
    def test_iter_edges(self, matrix):
        edges = sorted(matrix.iter_edges())
        assert (SERVER, 0, 0) in edges
        assert (0, 2, 0) in edges
        assert (1, 2, 2) in edges
        # one edge per thread segment: 3 columns x (occupants)
        assert len(edges) == 6

    def test_edge_multiplicities(self, rng):
        m = ThreadMatrix(k=4)
        m.join(0, 2, rng, columns=[0, 1])
        m.join(1, 2, rng, columns=[0, 1])  # two parallel threads 0 -> 1
        counts = m.edge_multiplicities()
        assert counts[(0, 1)] == 2

    def test_dense_shape(self, matrix):
        dense = matrix.to_dense()
        assert dense.shape == (3, 6)
        assert dense.sum() == 6
        assert list(dense.sum(axis=1)) == [2, 2, 2]


class TestLeave:
    def test_leave_splices_chain(self, matrix):
        matrix.leave(1)
        assert matrix.column_chain(1) == [0]
        assert matrix.column_chain(2) == [2]
        assert matrix.parents_of(2) == {0: 0, 2: SERVER}
        matrix.check_invariants()

    def test_leave_unknown_raises(self, matrix):
        with pytest.raises(KeyError):
            matrix.leave(99)

    def test_leave_then_rejoin_id(self, matrix, rng):
        matrix.leave(0)
        matrix.join(0, 2, rng)
        assert 0 in matrix
        matrix.check_invariants()

    def test_leave_restores_hanging_to_server(self, rng):
        m = ThreadMatrix(k=3)
        m.join(0, 2, rng, columns=[0, 1])
        m.leave(0)
        assert m.hanging_owners() == [SERVER, SERVER, SERVER]
        assert len(m) == 0


class TestThreadDropAdd:
    def test_drop_thread(self, matrix, rng):
        dropped = matrix.drop_thread(0, column=1)
        assert dropped == 1
        assert matrix.row(0).degree == 1
        # child in that column now attaches above
        assert matrix.parents_of(1)[1] == SERVER
        matrix.check_invariants()

    def test_drop_last_thread_raises(self, rng):
        m = ThreadMatrix(k=3)
        m.join(0, 1, rng, columns=[0])
        with pytest.raises(ValueError):
            m.drop_thread(0, column=0)

    def test_drop_missing_column_raises(self, matrix):
        with pytest.raises(KeyError):
            matrix.drop_thread(0, column=4)

    def test_drop_requires_rng_or_column(self, matrix):
        with pytest.raises(ValueError):
            matrix.drop_thread(0)

    def test_add_thread(self, matrix, rng):
        added = matrix.add_thread(0, column=3)
        assert added == 3
        assert matrix.row(0).degree == 3
        assert matrix.hanging_owner(3) == 0
        matrix.check_invariants()

    def test_add_existing_column_raises(self, matrix):
        with pytest.raises(ValueError):
            matrix.add_thread(0, column=0)

    def test_add_splices_at_key_height(self, rng):
        """Re-adding a thread inserts the node at its own key height."""
        m = ThreadMatrix(k=3)
        m.join(0, 2, rng, columns=[0, 1])
        m.join(1, 2, rng, columns=[0, 1])
        m.drop_thread(0, column=1)
        m.add_thread(0, column=1)
        # Node 0 joined first, so it must sit above node 1 in column 1.
        assert m.column_chain(1) == [0, 1]
        m.check_invariants()

    def test_full_row_add_raises(self, rng):
        m = ThreadMatrix(k=2)
        m.join(0, 2, rng, columns=[0, 1])
        with pytest.raises(ValueError):
            m.add_thread(0, rng=rng)


class TestKeyAllocators:
    def test_append_keys_monotone(self):
        alloc = AppendKeys()
        keys = [alloc.next_key() for _ in range(10)]
        assert keys == sorted(keys)
        assert len(set(keys)) == 10

    def test_uniform_keys_unique(self, rng):
        alloc = UniformKeys(rng)
        keys = [alloc.next_key() for _ in range(200)]
        assert len(set(keys)) == 200
        assert all(0.0 <= key < 1.0 for key in keys)

    def test_uniform_insertion_mid_matrix(self, rng):
        """With uniform keys, some arrivals must land above older rows."""
        m = ThreadMatrix(k=4, allocator=UniformKeys(rng))
        for node_id in range(30):
            m.join(node_id, 2, rng)
        order = m.node_ids
        assert order != sorted(order)  # at least one mid insertion
        m.check_invariants()
