"""Unit tests for the virtual clock and the in-memory fault network."""

import asyncio

import pytest

from repro.net.testing import LinkFaults, VirtualClock, VirtualNetwork


def run(coro):
    return asyncio.run(coro)


async def _echo_handler(reader, writer):
    try:
        while True:
            data = await reader.readexactly(1)
            writer.write(data)
            await writer.drain()
    except (asyncio.IncompleteReadError, ConnectionError):
        pass


class TestVirtualClock:
    def test_time_only_moves_on_advance(self):
        async def scenario():
            clock = VirtualClock()
            assert clock.time() == 0.0
            await clock.advance(2.5)
            return clock.time()

        assert run(scenario()) == 2.5

    def test_sleepers_wake_in_deadline_order(self):
        async def scenario():
            clock = VirtualClock()
            order = []

            async def sleeper(delay, tag):
                await clock.sleep(delay)
                order.append((tag, clock.time()))

            tasks = [
                asyncio.ensure_future(sleeper(0.3, "late")),
                asyncio.ensure_future(sleeper(0.1, "early")),
                asyncio.ensure_future(sleeper(0.2, "mid")),
            ]
            await clock.advance(1.0)
            await asyncio.gather(*tasks)
            return order

        assert run(scenario()) == [
            ("early", 0.1), ("mid", 0.2), ("late", 0.3)
        ]

    def test_wait_for_timeout_is_virtual(self):
        async def scenario():
            clock = VirtualClock()
            blocked = asyncio.Event()

            async def waiter():
                with pytest.raises(asyncio.TimeoutError):
                    await clock.wait_for(blocked.wait(), timeout=0.5)
                return clock.time()

            task = asyncio.ensure_future(waiter())
            await clock.advance(0.5)
            return await task

        assert run(scenario()) == 0.5

    def test_wait_for_returns_result_before_timeout(self):
        async def scenario():
            clock = VirtualClock()

            async def value_soon():
                await clock.sleep(0.1)
                return 42

            task = asyncio.ensure_future(
                clock.wait_for(value_soon(), timeout=5.0)
            )
            await clock.advance(0.2)
            return await task

        assert run(scenario()) == 42

    def test_nested_sleeps_fire_in_one_advance(self):
        """A timer whose callback schedules another timer inside the
        advanced window fires within the same advance call."""

        async def scenario():
            clock = VirtualClock()
            hops = []

            async def hopper():
                for _ in range(3):
                    await clock.sleep(0.1)
                    hops.append(clock.time())

            task = asyncio.ensure_future(hopper())
            await clock.advance(1.0)
            await task
            return hops

        assert run(scenario()) == pytest.approx([0.1, 0.2, 0.3])


class TestVirtualPipes:
    def test_echo_roundtrip(self):
        async def scenario():
            net = VirtualNetwork()
            net.bind("b", 7, _echo_handler)
            reader, writer = await net.open_connection("a", "b", 7)
            writer.write(b"x")
            await writer.drain()
            data = await reader.readexactly(1)
            writer.close()
            await net.shutdown()
            return data

        assert run(scenario()) == b"x"

    def test_latency_delays_delivery(self):
        async def scenario():
            net = VirtualNetwork()
            net.set_link("a", "b", latency=0.25)
            net.bind("b", 7, _echo_handler)
            dial = asyncio.ensure_future(net.open_connection("a", "b", 7))
            await net.clock.advance(0.25)  # the SYN pays one link latency
            reader, writer = await dial
            connect_time = net.clock.time()
            writer.write(b"x")
            task = asyncio.ensure_future(reader.readexactly(1))
            await net.clock.advance(1.0)
            await task
            echo_at = [t for t, kind, src, _, *_ in net.trace
                       if kind == "deliver" and src == "b"]
            await net.shutdown()
            return connect_time, echo_at[0]

        connect_time, echoed = run(scenario())
        assert connect_time == 0.25
        assert echoed == pytest.approx(0.75)  # there and back

    def test_connect_refused_without_listener(self):
        async def scenario():
            net = VirtualNetwork()
            with pytest.raises(ConnectionRefusedError):
                await net.open_connection("a", "b", 7)
            return net.events("refused")

        assert len(run(scenario())) == 1

    def test_partition_refuses_and_voids_then_heals(self):
        async def scenario():
            net = VirtualNetwork()
            net.bind("b", 7, _echo_handler)
            reader, writer = await net.open_connection("a", "b", 7)
            net.partition("a", "b")
            writer.write(b"x")
            await writer.drain()
            await net.clock.advance(0.1)
            voided = len(net.events("void"))
            with pytest.raises(ConnectionRefusedError):
                await net.open_connection("a", "b", 7)
            net.heal("a", "b")
            writer.write(b"y")
            await writer.drain()
            data = await reader.readexactly(1)
            await net.shutdown()
            return voided, data

        voided, data = run(scenario())
        assert voided == 1
        assert data == b"y"  # the partitioned byte is gone for good

    def test_loss_is_seeded_and_frame_aligned(self):
        async def scenario(seed):
            net = VirtualNetwork(seed=seed)
            net.set_link("a", "b", loss=0.5, symmetric=False)
            net.bind("b", 7, _echo_handler)
            _, writer = await net.open_connection("a", "b", 7)
            for _ in range(20):
                writer.write(b"z")
            await net.clock.advance(0.1)
            lost = len(net.events("lose"))
            await net.shutdown()
            return lost

        first = run(scenario(5))
        assert first == run(scenario(5))  # same seed, same losses
        assert 0 < first < 20

    def test_corruption_flips_exactly_one_bit(self):
        async def scenario():
            net = VirtualNetwork()
            net.set_link("a", "b", corrupt=1.0, symmetric=False)
            net.bind("b", 7, _echo_handler)
            reader, writer = await net.open_connection("a", "b", 7)
            original = bytes(range(32))
            writer.write(original)
            task = asyncio.ensure_future(reader.readexactly(32))
            await net.clock.advance(0.1)
            received = await task
            await net.shutdown()
            return original, received

        original, received = run(scenario())
        assert received != original
        diff = [o ^ r for o, r in zip(original, received)]
        flipped = [d for d in diff if d]
        assert len(flipped) == 1 and bin(flipped[0]).count("1") == 1

    def test_close_resets_the_other_side(self):
        async def scenario():
            net = VirtualNetwork()
            accepted = {}

            async def handler(reader, writer):
                accepted["reader"] = reader
                accepted["writer"] = writer

            net.bind("b", 7, handler)
            reader, writer = await net.open_connection("a", "b", 7)
            await net.clock.advance(0.0)
            writer.close()
            await net.clock.advance(0.1)
            # Server side: reads run out, writes raise.
            with pytest.raises(asyncio.IncompleteReadError):
                await accepted["reader"].readexactly(1)
            accepted["writer"].write(b"x")
            with pytest.raises(ConnectionResetError):
                await accepted["writer"].drain()
            await net.shutdown()

        run(scenario())

    def test_backpressure_blocks_drain_until_delivery(self):
        async def scenario():
            net = VirtualNetwork()
            net.set_link("a", "b", bandwidth=100.0, buffer_bytes=8,
                         symmetric=False)
            net.bind("b", 7, _echo_handler)
            _, writer = await net.open_connection("a", "b", 7)
            writer.write(bytes(16))  # 16B at 100B/s = 0.16s in flight
            drained = asyncio.ensure_future(writer.drain())
            await net.clock.advance(0.01)
            still_blocked = not drained.done()
            await net.clock.advance(1.0)
            await drained
            await net.shutdown()
            return still_blocked

        assert run(scenario()) is True

    def test_blackhole_swallows_one_direction_only(self):
        async def scenario():
            net = VirtualNetwork()
            net.bind("b", 7, _echo_handler)
            reader, writer = await net.open_connection("a", "b", 7)
            # The established link goes half-open: a's frames vanish.
            net.set_link("a", "b", blackhole=True, symmetric=False)
            writer.write(b"x")
            await writer.drain()
            await net.clock.advance(0.1)
            await net.shutdown()
            return len(net.events("void")), len(net.events("deliver"))

        voided, delivered = run(scenario())
        assert voided == 1
        assert delivered == 0  # the echo never happened: b heard nothing

    def test_default_faults_apply_to_new_links(self):
        net = VirtualNetwork(default_faults=LinkFaults(latency=0.5))
        assert net.link("x", "y").latency == 0.5
        net.set_default(latency=0.1)
        assert net.link("p", "q").latency == 0.1
        assert net.link("x", "y").latency == 0.1  # existing links updated too
