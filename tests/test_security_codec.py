"""Unit tests for the Z_q RLNC codec and the homomorphic hash defence."""

import numpy as np
import pytest

from repro.security import (
    HomomorphicHasher,
    PrimeDecoder,
    PrimeEncoder,
    PrimeRecoder,
    Q,
    VerifiedRelay,
    bytes_to_symbols,
    find_group_modulus,
    generate_params,
    make_jam_packet,
    symbols_to_bytes,
)
from repro.security.homomorphic import _is_prime


@pytest.fixture
def source(rng):
    return rng.integers(0, Q, size=(6, 8))


@pytest.fixture
def encoder(source, rng):
    return PrimeEncoder(source, rng)


class TestPrimeCodec:
    def test_roundtrip(self, source, encoder):
        decoder = PrimeDecoder(6, 8)
        while not decoder.is_complete:
            decoder.push(encoder.emit())
        assert np.array_equal(decoder.recover(), source % Q)

    def test_systematic_packets(self, source, encoder):
        packet = encoder.source_packet(2)
        assert packet.coefficients[2] == 1
        assert np.count_nonzero(packet.coefficients) == 1
        assert np.array_equal(packet.payload, source[2] % Q)

    def test_duplicate_not_innovative(self, encoder):
        decoder = PrimeDecoder(6, 8)
        packet = encoder.emit()
        assert decoder.push(packet)
        assert not decoder.push(packet)

    def test_exactly_g_innovative_needed(self, encoder):
        decoder = PrimeDecoder(6, 8)
        innovative = 0
        while not decoder.is_complete:
            if decoder.push(encoder.emit()):
                innovative += 1
        assert innovative == 6

    def test_recover_early_raises(self, encoder):
        decoder = PrimeDecoder(6, 8)
        decoder.push(encoder.emit())
        with pytest.raises(RuntimeError):
            decoder.recover()

    def test_shape_mismatch_raises(self, encoder):
        decoder = PrimeDecoder(5, 8)
        with pytest.raises(ValueError):
            decoder.push(encoder.emit())

    def test_recoder_chain(self, source, encoder, rng):
        relay = PrimeRecoder(6, 8, rng)
        sink = PrimeDecoder(6, 8)
        guard = 0
        while not sink.is_complete:
            relay.receive(encoder.emit())
            packet = relay.emit()
            if packet is not None:
                sink.push(packet)
            guard += 1
            assert guard < 500
        assert np.array_equal(sink.recover(), source % Q)

    def test_bytes_end_to_end(self, rng):
        content = bytes(rng.integers(0, 256, size=500, dtype=np.uint8))
        symbols = bytes_to_symbols(content, symbols_per_packet=10)
        encoder = PrimeEncoder(symbols, rng)
        decoder = PrimeDecoder(*symbols.shape)
        while not decoder.is_complete:
            decoder.push(encoder.emit())
        assert symbols_to_bytes(decoder.recover(), len(content)) == content


class TestPrimality:
    def test_small_primes(self):
        assert _is_prime(2) and _is_prime(3) and _is_prime(Q)
        assert not _is_prime(1) and not _is_prime(2**31)

    def test_find_group_modulus(self):
        modulus = find_group_modulus()
        assert _is_prime(modulus)
        assert (modulus - 1) % Q == 0


class TestHomomorphicHash:
    @pytest.fixture
    def hasher(self):
        return HomomorphicHasher(generate_params(8, seed=5))

    def test_valid_source_packets_verify(self, source, encoder, hasher):
        hashes = hasher.hash_generation(source)
        for index in range(6):
            assert hasher.verify(encoder.source_packet(index), hashes)

    def test_valid_mixtures_verify(self, source, encoder, hasher):
        hashes = hasher.hash_generation(source)
        for _ in range(10):
            assert hasher.verify(encoder.emit(), hashes)

    def test_recoded_mixtures_verify(self, source, encoder, hasher, rng):
        """The homomorphism survives arbitrary re-mixing depth."""
        hashes = hasher.hash_generation(source)
        relay = PrimeRecoder(6, 8, rng)
        for _ in range(6):
            relay.receive(encoder.emit())
        for _ in range(10):
            assert hasher.verify(relay.emit(), hashes)

    def test_jam_packets_rejected(self, source, hasher, rng):
        hashes = hasher.hash_generation(source)
        for _ in range(10):
            assert not hasher.verify(make_jam_packet(6, 8, rng), hashes)

    def test_single_symbol_tamper_detected(self, source, encoder, hasher):
        hashes = hasher.hash_generation(source)
        packet = encoder.emit()
        packet.payload[3] = (packet.payload[3] + 1) % Q
        assert not hasher.verify(packet, hashes)

    def test_coefficient_tamper_detected(self, source, encoder, hasher):
        hashes = hasher.hash_generation(source)
        packet = encoder.emit()
        packet.coefficients[0] = (packet.coefficients[0] + 1) % Q
        assert not hasher.verify(packet, hashes)

    def test_homomorphism_identity(self, source, hasher, rng):
        """H(a·u + b·v) == H(u)^a · H(v)^b directly."""
        u = rng.integers(0, Q, size=8)
        v = rng.integers(0, Q, size=8)
        a, b = int(rng.integers(1, Q)), int(rng.integers(1, Q))
        mixed = (a * u + b * v) % Q
        lhs = hasher.hash_payload(mixed)
        P = hasher.params.modulus
        rhs = (pow(hasher.hash_payload(u), a, P)
               * pow(hasher.hash_payload(v), b, P)) % P
        assert lhs == rhs

    def test_params_validation(self):
        with pytest.raises(ValueError):
            generate_params(0)


class TestVerifiedRelay:
    def test_jammer_cannot_poison_relay(self, source, encoder, rng):
        hasher = HomomorphicHasher(generate_params(8, seed=6))
        hashes = hasher.hash_generation(source)
        relay = VerifiedRelay(hasher, hashes, 6, 8, rng)
        sink = PrimeDecoder(6, 8)
        guard = 0
        while not sink.is_complete:
            relay.receive(encoder.emit())
            relay.receive(make_jam_packet(6, 8, rng))
            packet = relay.emit()
            if packet is not None:
                assert hasher.verify(packet, hashes)
                sink.push(packet)
            guard += 1
            assert guard < 500
        assert np.array_equal(sink.recover(), source % Q)
        assert relay.stats.rejected == relay.stats.accepted
        assert relay.stats.rejection_rate == pytest.approx(0.5)

    def test_relay_completion_flag(self, source, encoder, rng):
        hasher = HomomorphicHasher(generate_params(8, seed=7))
        hashes = hasher.hash_generation(source)
        relay = VerifiedRelay(hasher, hashes, 6, 8, rng)
        assert not relay.is_complete
        while not relay.is_complete:
            relay.receive(encoder.emit())
