"""Unit tests for the actor-level protocol simulation."""

import pytest

from repro.protocol_sim import (
    SERVER_ADDRESS,
    JoinRequest,
    MessageNetwork,
    ProtocolConfig,
    ProtocolSimulation,
)
from repro.sim import Simulator


def make_sim(**overrides):
    config = ProtocolConfig(k=12, d=2, seed=3, **overrides)
    return ProtocolSimulation(config)


class TestNetwork:
    def test_delivery_with_latency(self, rng):
        sim = Simulator()
        network = MessageNetwork(sim, rng, base_latency=0.1, jitter=0.0)
        inbox = []

        class Sink:
            def handle(self, message, sender):
                inbox.append((sim.now, message, sender))

        network.register("sink", Sink())
        network.send("src", "sink", JoinRequest(reply_to=1))
        sim.run()
        assert len(inbox) == 1
        assert inbox[0][0] == pytest.approx(0.1)
        assert inbox[0][2] == "src"

    def test_loss(self, rng):
        sim = Simulator()
        network = MessageNetwork(sim, rng, loss_rate=0.5)
        received = []

        class Sink:
            def handle(self, message, sender):
                received.append(message)

        network.register("sink", Sink())
        for _ in range(200):
            network.send("src", "sink", JoinRequest(reply_to=1))
        sim.run()
        assert 60 < len(received) < 140
        assert network.stats.dropped == 200 - len(received)

    def test_unknown_destination_silently_dropped(self, rng):
        sim = Simulator()
        network = MessageNetwork(sim, rng)
        network.send("src", "ghost", JoinRequest(reply_to=1))
        sim.run()  # no exception

    def test_stats_accounting(self, rng):
        sim = Simulator()
        network = MessageNetwork(sim, rng)
        network.send("a", "b", JoinRequest(reply_to=1))
        assert network.stats.messages["JoinRequest"] == 1
        assert network.stats.total_bytes() == 16

    def test_parameter_validation(self, rng):
        sim = Simulator()
        with pytest.raises(ValueError):
            MessageNetwork(sim, rng, base_latency=-1)
        with pytest.raises(ValueError):
            MessageNetwork(sim, rng, loss_rate=1.0)

    def test_fifo_preserves_per_channel_order(self, rng):
        """Jitter must not reorder a channel's messages (TCP semantics);
        regression for a real race: a stale AttachChild overtaking a
        fresh one under §5 uniform insertion."""
        sim = Simulator()
        network = MessageNetwork(sim, rng, base_latency=0.01, jitter=0.5)
        received = []

        class Sink:
            def handle(self, message, sender):
                received.append(message.reply_to)

        network.register("sink", Sink())
        for index in range(50):
            network.send("src", "sink", JoinRequest(reply_to=index))
        sim.run()
        assert received == list(range(50))

    def test_datagram_mode_can_reorder(self, rng):
        sim = Simulator()
        network = MessageNetwork(sim, rng, base_latency=0.01, jitter=0.5,
                                 fifo=False)
        received = []

        class Sink:
            def handle(self, message, sender):
                received.append(message.reply_to)

        network.register("sink", Sink())
        for index in range(50):
            network.send("src", "sink", JoinRequest(reply_to=index))
        sim.run()
        assert sorted(received) == list(range(50))
        assert received != list(range(50))  # jitter reorders datagrams


class TestJoinLeave:
    def test_grow_builds_consistent_views(self):
        sim = make_sim()
        sim.grow(25, settle=3.0)
        assert len(sim.peers) == 25
        assert sim.core.population == 25
        assert sim.consistency_check()

    def test_graceful_leave_updates_views(self):
        sim = make_sim()
        sim.grow(20, settle=3.0)
        victim = sim.core.matrix.node_ids[4]
        sim.leave(victim)
        sim.run(2.0)
        assert victim not in sim.core.matrix
        assert sim.consistency_check()

    def test_leave_of_unknown_is_ignored(self):
        sim = make_sim()
        sim.grow(5, settle=2.0)
        from repro.protocol.messages import LeaveRequest

        sim.network.send(999, SERVER_ADDRESS, LeaveRequest(node_id=999))
        sim.run(1.0)
        assert sim.core.population == 5


class TestFailureDetectionAndRepair:
    def _sim_with_victim(self):
        sim = make_sim()
        sim.grow(25, settle=3.0)
        victims = [
            n for n in sim.core.matrix.node_ids
            if any(c is not None
                   for c in sim.core.matrix.children_of(n).values())
        ]
        return sim, victims[0]

    def test_crash_is_detected_and_repaired(self):
        sim, victim = self._sim_with_victim()
        sim.crash(victim)
        sim.run(4.0)
        assert victim not in sim.core.matrix
        records = sim.completed_repairs()
        assert len(records) == 1
        assert records[0].victim == victim
        assert sim.consistency_check()

    def test_repair_latency_bounded_by_timers(self):
        sim, victim = self._sim_with_victim()
        sim.crash(victim)
        sim.run(5.0)
        latency = sim.repair_latencies()[0]
        config = sim.config
        # silence detection + probe + a few network hops
        upper = (config.silence_timeout + 2 * config.keepalive_interval
                 + config.probe_timeout + 6 * (config.base_latency + config.jitter))
        assert 0 < latency <= upper

    def test_alive_node_survives_spurious_complaint(self):
        from repro.protocol.messages import ComplaintMsg

        sim = make_sim()
        sim.grow(15, settle=3.0)
        suspect = sim.core.matrix.node_ids[2]
        reporter = sim.core.matrix.node_ids[10]
        sim.network.send(reporter, SERVER_ADDRESS,
                         ComplaintMsg(reporter=reporter, column=0,
                                      suspect=suspect))
        sim.run(3.0)
        assert suspect in sim.core.matrix  # the probe was answered

    def test_leaf_crash_unnoticed_without_children(self):
        """A node with no children never triggers complaints — its row
        stays until some child would depend on it (the paper's model:
        detection is complaint-driven)."""
        sim = make_sim()
        sim.grow(10, settle=3.0)
        leaves = [
            n for n in sim.core.matrix.node_ids
            if all(c is None for c in sim.core.matrix.children_of(n).values())
        ]
        if not leaves:
            pytest.skip("no childless node in this topology")
        sim.crash(leaves[0])
        sim.run(3.0)
        assert leaves[0] in sim.core.matrix
        assert not sim.completed_repairs()

    def test_message_loss_delays_but_does_not_break(self):
        sim = make_sim(message_loss=0.1)
        sim.grow(20, settle=4.0)
        victims = [
            n for n in sim.core.matrix.node_ids
            if any(c is not None
                   for c in sim.core.matrix.children_of(n).values())
        ]
        sim.crash(victims[0])
        sim.run(10.0)
        assert victims[0] not in sim.core.matrix

    def test_two_simultaneous_crashes(self):
        sim = make_sim()
        sim.grow(30, settle=3.0)
        parents = [
            n for n in sim.core.matrix.node_ids
            if any(c is not None
                   for c in sim.core.matrix.children_of(n).values())
        ]
        first, second = parents[0], parents[1]
        sim.crash(first)
        sim.crash(second)
        sim.run(6.0)
        assert first not in sim.core.matrix
        assert second not in sim.core.matrix
        assert sim.consistency_check()


class TestServerLoad:
    def test_keepalives_dominate_but_control_is_light(self):
        sim = make_sim()
        sim.grow(25, settle=5.0)
        stats = sim.network.stats
        control = stats.total_messages() - stats.messages.get("KeepAlive", 0)
        # control-plane messages are O(N·d), keep-alives are the data plane
        assert control < 0.2 * stats.total_messages()
        assert stats.messages["JoinGrant"] == 25


class TestActorCongestion:
    def test_shed_and_restore_cycle(self):
        sim = make_sim()
        sim.grow(20, settle=3.0)
        node = sim.core.matrix.node_ids[5]
        degree_before = sim.core.matrix.row(node).degree
        sim.congest(node)
        sim.run(2.0)
        assert sim.core.matrix.row(node).degree == degree_before - 1
        assert sim.consistency_check()
        sim.uncongest(node)
        sim.run(2.0)
        assert sim.core.matrix.row(node).degree == degree_before
        assert sim.consistency_check()

    def test_shed_to_floor_refused(self):
        sim = make_sim()
        sim.grow(15, settle=3.0)
        node = sim.core.matrix.node_ids[3]
        for _ in range(5):  # d=2: only one drop possible
            sim.congest(node)
            sim.run(1.5)
        assert sim.core.matrix.row(node).degree == 1
        assert sim.consistency_check()

    def test_failed_node_congestion_ignored(self):
        sim = make_sim()
        sim.grow(15, settle=3.0)
        node = sim.core.matrix.node_ids[2]
        sim.crash(node)
        sim.run(4.0)  # node is repaired away
        sim.congest(node)
        sim.run(1.0)  # must not raise; message ignored
        assert node not in sim.core.matrix


class TestMessagesCompatShim:
    def test_shim_reexports_the_protocol_vocabulary(self):
        """``repro.protocol_sim.messages`` is a deprecated alias for
        ``repro.protocol.messages``: same class objects, so isinstance
        checks agree across old and new import paths."""
        import repro.protocol.messages as canonical
        import repro.protocol_sim.messages as shim

        for name in shim.__all__:
            assert getattr(shim, name) is getattr(canonical, name)
