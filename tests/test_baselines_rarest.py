"""Unit tests for the rarest-first forwarding baseline."""

import numpy as np
import pytest

from repro.baselines import FloodingSimulation, RarestFirstSimulation
from repro.core import OverlayNetwork


def _net(seed=51):
    net = OverlayNetwork(k=10, d=2, seed=seed)
    net.grow(20)
    return net


class TestRarestFirst:
    def test_completes(self):
        sim = RarestFirstSimulation(_net(), packet_count=15, seed=1)
        report = sim.run_until_complete(max_slots=1000)
        assert report.completion_fraction == 1.0

    def test_beats_random_flooding(self):
        """The scheduling heuristic must pay for itself."""
        rarest = RarestFirstSimulation(_net(seed=52), packet_count=20, seed=2)
        flood = FloodingSimulation(_net(seed=52), packet_count=20, seed=2)
        rarest_report = rarest.run_until_complete(max_slots=2000)
        flood_report = flood.run_until_complete(max_slots=2000)
        assert rarest_report.slots < flood_report.slots
        assert rarest_report.duplicate_fraction <= flood_report.duplicate_fraction

    def test_still_slower_than_rlnc(self):
        """...but a heuristic cannot beat coding."""
        from repro.coding import GenerationParams
        from repro.sim import BroadcastSimulation

        packet_count = 20
        rarest = RarestFirstSimulation(_net(seed=53), packet_count, seed=3)
        rarest_report = rarest.run_until_complete(max_slots=2000)
        rng = np.random.default_rng(0)
        content = bytes(rng.integers(0, 256, size=packet_count * 32,
                                     dtype=np.uint8))
        rlnc = BroadcastSimulation(
            _net(seed=53), content,
            GenerationParams(generation_size=packet_count, payload_size=32),
            seed=3,
        )
        rlnc_report = rlnc.run_until_complete(max_slots=2000)
        assert max(rlnc_report.completion_slots()) < rarest_report.slots

    def test_send_counting_rotates_pieces(self):
        """A node must not fixate on one piece: consecutive picks from a
        multi-piece buffer differ."""
        sim = RarestFirstSimulation(_net(), packet_count=10, seed=4)
        node = sim.net.matrix.node_ids[0]
        buffer = sim.buffer_of(node)
        buffer.update({0, 1, 2})
        rng = np.random.default_rng(5)
        picks = {sim._pick_piece(node, rng) for _ in range(3)}
        assert picks == {0, 1, 2}

    def test_failed_nodes_silent(self):
        net = _net()
        victim = net.matrix.node_ids[-1]
        net.fail(victim)
        sim = RarestFirstSimulation(net, packet_count=10, seed=6)
        sim.step()
        sim.step()
        assert sim._received.get(victim, 0) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            RarestFirstSimulation(_net(), packet_count=0)
