"""Property tests for the workload generators plus a pinned golden trace.

The schedule generators feed every churn driver in the repo (the sim
session, the soak runner, the examples); a silent distribution shift
there invalidates experiments without failing any functional test.
Two guards:

* Hypothesis properties over the generator parameters — shape, support
  and rate statistics hold for *arbitrary* valid inputs, not just the
  handful of values the unit tests pin;
* a golden churn trace: a fixed schedule applied through
  :class:`~repro.workloads.trace.TraceRecorder` at a pinned seed must
  serialise to exactly the JSON recorded in
  ``tests/goldens/workload_steady.json`` — generator output, overlay id
  assignment and trace serialisation all pinned by one file.
"""

import json
import math
from pathlib import Path

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import OverlayNetwork
from repro.workloads import ChurnTrace, TraceRecorder
from repro.workloads.generator import (
    diurnal_schedule,
    flash_crowd_schedule,
    steady_schedule,
    total_joins,
)

GOLDEN = Path(__file__).parent / "goldens" / "workload_steady.json"


# ----------------------------------------------------------------------
# Hypothesis properties


class TestScheduleProperties:
    @given(
        intervals=st.integers(min_value=0, max_value=400),
        rate=st.floats(min_value=0.0, max_value=50.0,
                       allow_nan=False, allow_infinity=False),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_steady_shape_and_support(self, intervals, rate, seed):
        schedule = steady_schedule(
            intervals, rate, np.random.default_rng(seed)
        )
        assert len(schedule) == intervals
        assert all(isinstance(x, int) and x >= 0 for x in schedule)
        assert total_joins(schedule) == sum(schedule)

    @given(
        rate=st.floats(min_value=0.5, max_value=30.0),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_steady_mean_tracks_rate(self, rate, seed):
        """Poisson concentration: the sample mean lands near ``rate``.

        With 600 intervals the standard error is sqrt(rate/600); a
        6-sigma band keeps the property deterministic-in-practice over
        arbitrary seeds while still catching a mis-scaled rate.
        """
        intervals = 600
        schedule = steady_schedule(
            intervals, rate, np.random.default_rng(seed)
        )
        mean = total_joins(schedule) / intervals
        assert abs(mean - rate) < 6.0 * math.sqrt(rate / intervals) + 1e-9

    @given(
        intervals=st.integers(min_value=10, max_value=200),
        peak_rate=st.floats(min_value=1.0, max_value=100.0),
        base_rate=st.floats(min_value=0.0, max_value=5.0),
        width=st.floats(min_value=0.5, max_value=20.0),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_flash_crowd_shape(self, intervals, peak_rate, base_rate,
                               width, seed):
        peak_at = intervals // 3
        schedule = flash_crowd_schedule(
            intervals, peak_rate, peak_at, width,
            np.random.default_rng(seed), base_rate=base_rate,
        )
        assert len(schedule) == intervals
        assert all(x >= 0 for x in schedule)

    @given(
        peak_rate=st.floats(min_value=20.0, max_value=100.0),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_flash_crowd_mass_concentrates_at_peak(self, peak_rate, seed):
        """Most of the spike's mass lands within 3 widths of the peak."""
        intervals, peak_at, width = 120, 40, 4.0
        schedule = flash_crowd_schedule(
            intervals, peak_rate, peak_at, width,
            np.random.default_rng(seed), base_rate=0.0,
        )
        window = sum(
            schedule[t] for t in range(intervals)
            if abs(t - peak_at) <= 3 * width
        )
        total = total_joins(schedule)
        if total >= 20:  # too few arrivals and the ratio is noise
            assert window / total > 0.9

    @given(
        intervals=st.integers(min_value=1, max_value=300),
        mean_rate=st.floats(min_value=0.0, max_value=30.0),
        period=st.integers(min_value=1, max_value=100),
        swing=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_diurnal_shape_and_support(self, intervals, mean_rate, period,
                                       swing, seed):
        schedule = diurnal_schedule(
            intervals, mean_rate, period,
            np.random.default_rng(seed), swing=swing,
        )
        assert len(schedule) == intervals
        assert all(x >= 0 for x in schedule)

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_same_seed_same_schedule(self, seed):
        a = steady_schedule(50, 3.0, np.random.default_rng(seed))
        b = steady_schedule(50, 3.0, np.random.default_rng(seed))
        assert a == b


# ----------------------------------------------------------------------
# Golden trace


def _record_steady_trace() -> ChurnTrace:
    """The pinned scenario: steady joins with interleaved fails/leaves.

    Everything is seeded — the schedule rng, the overlay's id and
    placement rng, and the victim-selection rng — so the recorded
    trace is a pure function of this code and the golden can assert
    byte equality.
    """
    schedule_rng = np.random.default_rng(90210)
    joins = steady_schedule(12, 2.5, schedule_rng)
    net = OverlayNetwork(k=6, d=2, seed=90210)
    recorder = TraceRecorder(net)
    churn_rng = np.random.default_rng(424242)
    live: list[int] = []
    for interval, count in enumerate(joins):
        for _ in range(count):
            live.append(recorder.join())
        # One fail (repaired immediately) every third interval, one
        # graceful leave every fourth, once the swarm can spare them.
        if interval % 3 == 2 and len(live) > 4:
            victim = live.pop(int(churn_rng.integers(len(live))))
            recorder.fail(victim)
            recorder.repair(victim)
        if interval % 4 == 3 and len(live) > 4:
            victim = live.pop(int(churn_rng.integers(len(live))))
            recorder.leave(victim)
    return recorder.trace()


class TestGoldenTrace:
    def test_recorded_trace_matches_golden(self):
        trace = _record_steady_trace()
        assert GOLDEN.exists(), (
            f"golden missing; regenerate with: PYTHONPATH=src python -c "
            f"'from tests.test_workloads_properties import _record_steady_trace; "
            f"_record_steady_trace().save({str(GOLDEN)!r})'"
        )
        golden = json.loads(GOLDEN.read_text())
        assert json.loads(trace.to_json()) == golden

    def test_golden_round_trips_and_replays(self):
        trace = ChurnTrace.load(GOLDEN)
        assert ChurnTrace.from_json(trace.to_json()).events == trace.events
        counts = trace.counts()
        assert counts["join"] == total_joins(
            steady_schedule(12, 2.5, np.random.default_rng(90210))
        )
        assert counts["fail"] == counts["repair"]

    def test_golden_replay_is_deterministic(self):
        from repro.workloads import replay

        trace = ChurnTrace.load(GOLDEN)
        net_a = OverlayNetwork(k=6, d=2, seed=7)
        net_b = OverlayNetwork(k=6, d=2, seed=7)
        assert replay(trace, net_a) == replay(trace, net_b)
        assert np.array_equal(net_a.matrix.to_dense(), net_b.matrix.to_dense())


if __name__ == "__main__":
    # Regenerate the golden (run only when the scenario itself changes).
    _record_steady_trace().save(GOLDEN)
    print(f"wrote {GOLDEN}")
