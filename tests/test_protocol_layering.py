"""Tier-1 wrapper around the sans-IO layering contract.

``repro.protocol`` must never import asyncio, sockets, or any driver
package (``repro.net``, ``repro.sim``, ``repro.protocol_sim``).  CI's
lint job runs ``tools/check_layering.py`` directly; this test keeps the
contract enforced for anyone who only runs pytest.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_layering  # noqa: E402


class TestProtocolLayering:
    def test_protocol_package_is_sans_io(self):
        violations = check_layering.check_protocol_package()
        assert violations == []

    def test_obs_core_is_sans_io(self):
        violations = check_layering.check_obs_package()
        assert violations == []

    def test_dataplane_package_is_sans_io(self):
        violations = check_layering.check_dataplane_package()
        assert violations == []

    def test_obs_http_is_the_only_exempt_module(self):
        """The I/O escape hatch stays exactly one module wide."""
        assert check_layering.OBS_IO_MODULES == {"http.py"}
        assert (check_layering.OBS_DIR / "http.py").is_file()

    def test_checker_catches_absolute_import(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import asyncio\nfrom repro.net import PeerNode\n")
        violations = check_layering.check_file(bad)
        assert len(violations) == 2
        assert "asyncio" in violations[0]
        assert "repro.net" in violations[1]

    def test_checker_catches_relative_escape(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("from ..net.transport import Transport\n")
        violations = check_layering.check_file(bad)
        assert len(violations) == 1

    def test_checker_allows_pure_layers(self, tmp_path):
        good = tmp_path / "good.py"
        good.write_text(
            "from dataclasses import dataclass\n"
            "from ..core.matrix import SERVER\n"
            "from .messages import KeepAlive\n"
        )
        assert check_layering.check_file(good) == []

    def test_checker_cli_passes_on_this_tree(self):
        """The exact command CI's lint job runs."""
        import subprocess

        result = subprocess.run(
            [sys.executable, str(REPO_ROOT / "tools" / "check_layering.py")],
            capture_output=True, text=True,
        )
        assert result.returncode == 0, result.stderr
