"""Tests for smaller public API surfaces not covered elsewhere."""

import numpy as np
import pytest

from repro.coding import InnovationTracker, innovation_probability
from repro.analysis import FlowNetwork, expansion_report
from repro.baselines.edmonds import pack_arborescences
from repro.core import OverlayNetwork
from repro.sim import RngStreams


class TestInnovationTracker:
    def test_counts_and_efficiency(self):
        tracker = InnovationTracker()
        for outcome in (True, True, False, True):
            tracker.record(outcome)
        assert tracker.received == 4
        assert tracker.innovative == 3
        assert tracker.efficiency == pytest.approx(0.75)

    def test_empty_efficiency_is_one(self):
        assert InnovationTracker().efficiency == 1.0

    def test_sampling_history(self):
        tracker = InnovationTracker()
        tracker.record(True)
        tracker.sample(current_rank=1)
        tracker.record(False)
        tracker.sample(current_rank=1)
        assert tracker.history == [(1, 1), (2, 1)]

    def test_matches_analytic_probability(self, rng):
        """Measured innovation frequency at fixed receiver rank matches
        1 - q^(rank - g)."""
        from repro.coding import Decoder, GenerationParams, SourceEncoder

        g = 4
        params = GenerationParams(generation_size=g, payload_size=4)
        trials, hits = 0, 0
        for seed in range(120):
            local = np.random.default_rng(seed)
            content = bytes(local.integers(0, 256, size=16, dtype=np.uint8))
            encoder = SourceEncoder(content, params, local)
            decoder = Decoder(params, 1)
            # bring the decoder to rank g-1
            while decoder.total_rank < g - 1:
                decoder.push(encoder.emit(0))
            trials += 1
            if decoder.push(encoder.emit(0)):
                hits += 1
        expected = innovation_probability(g, g - 1)
        assert hits / trials == pytest.approx(expected, abs=0.03)


class TestFlowNetworkIntrospection:
    def test_vertex_bookkeeping(self):
        network = FlowNetwork()
        a = network.vertex("a")
        assert network.vertex("a") == a  # idempotent
        assert network.has_vertex("a")
        assert not network.has_vertex("b")
        network.add_edge("a", "b", 1)
        assert network.vertex_count == 2
        assert network.edge_count == 1


class TestEdmondsCandidateLimit:
    def test_candidate_cap_still_packs(self, rng):
        net = OverlayNetwork(k=8, d=2, seed=3)
        net.grow(12)
        graph = net.graph()
        trees = pack_arborescences(graph, 2, rng, max_candidate_tries=4)
        from repro.baselines import verify_packing

        assert verify_packing(graph, trees)


class TestExpansionReport:
    def test_fields(self, small_net):
        report = expansion_report(small_net.graph())
        assert report["nodes"] == 40.0
        assert report["edges"] == 120.0
        assert 0.0 <= report["spectral_gap"] <= 1.0


class TestRngStreamsIndependenceAcrossNames:
    def test_prefix_names_do_not_collide(self):
        """'node-1' and 'node-11' must not share a stream (a classic
        spawn-key bug class)."""
        streams = RngStreams(9)
        a = streams.get("node-1").integers(0, 10**9)
        b = streams.get("node-11").integers(0, 10**9)
        c = streams.get("node-1 1").integers(0, 10**9)
        assert len({int(a), int(b), int(c)}) == 3


class TestOverlayMiscBranches:
    def test_defect_summary_explicit_failed_override(self, tiny_net):
        bottom = tiny_net.matrix.node_ids[-1]
        summary = tiny_net.defect_summary(samples=None, failed={bottom})
        assert summary.mean_defect > 0.0
        # the overlay itself has no failures recorded
        assert tiny_net.failed == frozenset()

    def test_stats_property_is_live(self, tiny_net):
        before = tiny_net.stats.hello_grants
        tiny_net.join()
        assert tiny_net.stats.hello_grants == before + 1
