"""Unit tests for the §4 membership processes."""

import pytest

from repro.core import OverlayNetwork, churn_epochs, sequential_arrivals


class TestSequentialArrivals:
    def test_count_and_records(self):
        net = OverlayNetwork(k=10, d=2, seed=1)
        records = sequential_arrivals(net, 50, p=0.0)
        assert len(records) == 50
        assert net.population == 50
        assert not any(r.failed_on_arrival for r in records)

    def test_all_fail_when_p_one(self):
        net = OverlayNetwork(k=10, d=2, seed=2)
        records = sequential_arrivals(net, 20, p=1.0)
        assert all(r.failed_on_arrival for r in records)
        assert len(net.failed) == 20

    def test_failure_rate_approximates_p(self):
        net = OverlayNetwork(k=20, d=2, seed=3)
        records = sequential_arrivals(net, 2000, p=0.1)
        rate = sum(r.failed_on_arrival for r in records) / len(records)
        assert 0.07 < rate < 0.13

    def test_repair_interval_clears_failures(self):
        net = OverlayNetwork(k=10, d=2, seed=4)
        sequential_arrivals(net, 100, p=0.3, repair_interval=10)
        # failures may remain only from the final partial interval
        assert len(net.failed) <= 10

    def test_no_repair_accumulates(self):
        net = OverlayNetwork(k=10, d=2, seed=5)
        sequential_arrivals(net, 100, p=0.3, repair_interval=None)
        assert len(net.failed) > 10

    def test_observer_called(self):
        net = OverlayNetwork(k=10, d=2, seed=6)
        seen = []
        sequential_arrivals(net, 10, p=0.0, on_step=seen.append)
        assert len(seen) == 10
        assert [r.step for r in seen] == list(range(10))

    def test_invalid_p_raises(self):
        net = OverlayNetwork(k=10, d=2, seed=7)
        with pytest.raises(ValueError):
            sequential_arrivals(net, 5, p=1.5)


class TestChurnEpochs:
    def test_population_evolves(self):
        net = OverlayNetwork(k=12, d=2, seed=8)
        net.grow(30)
        history = churn_epochs(
            net, epochs=10, join_rate=3, leave_probability=0.05,
            failure_probability=0.05,
        )
        assert len(history) == 10
        assert history[-1].population == net.population
        assert net.failed == frozenset()  # every epoch ends repaired
        net.matrix.check_invariants()

    def test_epoch_stats_consistent(self):
        net = OverlayNetwork(k=12, d=2, seed=9)
        net.grow(20)
        history = churn_epochs(
            net, epochs=5, join_rate=2, leave_probability=0.1,
            failure_probability=0.1,
        )
        for epoch in history:
            assert epoch.joins == 2
            assert epoch.repairs == epoch.failures

    def test_min_population_respected(self):
        net = OverlayNetwork(k=12, d=2, seed=10)
        net.grow(5)
        churn_epochs(
            net, epochs=20, join_rate=0, leave_probability=0.9,
            failure_probability=0.0, min_population=3,
        )
        assert net.population >= 3
