"""Unit tests for the graph broadcast simulator, server detach,
and the binary-codec ablation support."""

import numpy as np
import pytest

from repro.coding import (
    BinaryDecoder,
    BinaryEncoder,
    GenerationParams,
    innovation_probability_q,
)
from repro.core import OverlayNetwork, RandomGraphOverlay
from repro.sim import BroadcastSimulation, GraphBroadcastSimulation, LossModel


def make_content(size, seed=3):
    rng = np.random.default_rng(seed)
    return bytes(rng.integers(0, 256, size=size, dtype=np.uint8))


class TestGraphBroadcast:
    def _run(self, seed=2, loss=0.0, n=30):
        overlay = RandomGraphOverlay(k=12, d=3, seed=seed)
        overlay.grow(n)
        content = make_content(2000)
        sim = GraphBroadcastSimulation(
            overlay, content, GenerationParams(8, 125), seed=seed + 1,
            loss=LossModel(loss),
        )
        return sim, overlay, content

    def test_completes_and_decodes(self):
        sim, _, _ = self._run()
        report = sim.run_until_complete(max_slots=500)
        assert report.completion_fraction == 1.0
        assert all(n.decoded_ok for n in report.nodes)

    def test_cycles_tolerated(self):
        sim, overlay, _ = self._run(n=100)
        assert not overlay.is_acyclic()
        report = sim.run_until_complete(max_slots=800)
        assert report.completion_fraction == 1.0

    def test_loss_slows_but_completes(self):
        clean, _, _ = self._run(seed=5)
        lossy, _, _ = self._run(seed=5, loss=0.15)
        report_clean = clean.run_until_complete(max_slots=1500)
        report_lossy = lossy.run_until_complete(max_slots=1500)
        assert report_lossy.completion_fraction == 1.0
        assert max(report_lossy.completion_slots()) >= max(
            report_clean.completion_slots()
        )

    def test_low_delay_vs_curtain(self):
        """Same population: random-graph completion beats curtain depth."""
        overlay = RandomGraphOverlay(k=12, d=3, seed=7)
        overlay.grow(150)
        content = make_content(1500)
        graph_sim = GraphBroadcastSimulation(
            overlay, content, GenerationParams(6, 250), seed=8
        )
        graph_report = graph_sim.run_until_complete(max_slots=1000)

        net = OverlayNetwork(k=12, d=3, seed=7)
        net.grow(150)
        curtain_sim = BroadcastSimulation(
            net, content, GenerationParams(6, 250), seed=8
        )
        curtain_report = curtain_sim.run_until_complete(max_slots=1000)
        assert graph_report.completion_fraction == 1.0
        assert max(graph_report.completion_slots()) < max(
            curtain_report.completion_slots()
        )


class TestServerDetach:
    def test_curtain_cannot_self_sustain(self):
        """Acyclic flow: once the rod is silent the top starves."""
        net = OverlayNetwork(k=10, d=2, seed=5)
        net.grow(20)
        content = make_content(3000)
        sim = BroadcastSimulation(net, content, GenerationParams(12, 125), seed=6)
        while not sim.swarm_has_full_rank():
            sim.step()
        sim.detach_server()
        report = sim.run_until_complete(max_slots=400)
        assert report.completion_fraction < 1.0

    def test_random_graph_self_sustains(self):
        """§6: cycles circulate information; the swarm finishes alone."""
        overlay = RandomGraphOverlay(k=12, d=3, seed=2)
        overlay.grow(40)
        content = make_content(3000)
        sim = GraphBroadcastSimulation(
            overlay, content, GenerationParams(12, 125), seed=4
        )
        while not sim.swarm_has_full_rank():
            sim.step()
        detach_slot = sim.slot
        sim.detach_server()
        report = sim.run_until_complete(max_slots=600)
        assert report.completion_fraction == 1.0
        assert all(n.decoded_ok for n in report.nodes)
        assert sim.server_packets <= detach_slot * 12

    def test_detach_at_future_slot(self):
        net = OverlayNetwork(k=10, d=2, seed=9)
        net.grow(10)
        sim = BroadcastSimulation(
            net, make_content(500), GenerationParams(4, 125), seed=10
        )
        sim.detach_server(at_slot=5)
        occupied = sum(
            1 for c in range(net.k) if net.matrix.column_chain(c)
        )
        sim.run(8)
        assert sim.server_packets == 5 * occupied

    def test_swarm_rank_false_before_anything_sent(self):
        net = OverlayNetwork(k=10, d=2, seed=11)
        net.grow(5)
        sim = BroadcastSimulation(
            net, make_content(500), GenerationParams(4, 125), seed=12
        )
        assert not sim.swarm_has_full_rank()


class TestBinaryCodec:
    def test_roundtrip(self, rng):
        source = rng.integers(0, 256, size=(10, 32), dtype=np.uint8)
        encoder = BinaryEncoder(source, rng)
        decoder = BinaryDecoder(10, 32)
        while not decoder.is_complete:
            decoder.push(encoder.emit())
        assert np.array_equal(decoder.recover(), source)

    def test_coefficients_binary(self, rng):
        source = rng.integers(0, 256, size=(6, 8), dtype=np.uint8)
        encoder = BinaryEncoder(source, rng)
        for _ in range(20):
            packet = encoder.emit()
            assert set(np.unique(packet.coefficients)) <= {0, 1}

    def test_duplicate_not_innovative(self, rng):
        source = rng.integers(0, 256, size=(6, 8), dtype=np.uint8)
        encoder = BinaryEncoder(source, rng)
        decoder = BinaryDecoder(6, 8)
        packet = encoder.emit()
        assert decoder.push(packet)
        assert not decoder.push(packet)

    def test_gf2_less_efficient_than_gf256(self, rng):
        """The field-size ablation: GF(2) wastes more packets."""
        trials = 30
        g = 12

        def binary_cost():
            source = rng.integers(0, 256, size=(g, 16), dtype=np.uint8)
            encoder = BinaryEncoder(source, rng)
            decoder = BinaryDecoder(g, 16)
            while not decoder.is_complete:
                decoder.push(encoder.emit())
            return decoder.received

        from repro.coding import Decoder, SourceEncoder

        def gf256_cost():
            params = GenerationParams(g, 16)
            content = bytes(rng.integers(0, 256, size=g * 16, dtype=np.uint8))
            encoder = SourceEncoder(content, params, rng)
            decoder = Decoder(params, 1)
            while not decoder.is_complete:
                decoder.push(encoder.emit())
            return decoder.generations[0].received

        binary_mean = np.mean([binary_cost() for _ in range(trials)])
        gf256_mean = np.mean([gf256_cost() for _ in range(trials)])
        assert binary_mean > gf256_mean

    def test_analytic_innovation_probability(self):
        assert innovation_probability_q(2, 8, 7) == pytest.approx(0.5)
        assert innovation_probability_q(256, 8, 7) == pytest.approx(1 - 1 / 256)
        assert innovation_probability_q(2, 8, 8) == 0.0
        with pytest.raises(ValueError):
            innovation_probability_q(1, 8, 4)

    def test_recover_early_raises(self, rng):
        decoder = BinaryDecoder(4, 8)
        with pytest.raises(RuntimeError):
            decoder.recover()
