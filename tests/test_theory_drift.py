"""Unit tests for the drift function f(b) and its roots."""

import numpy as np
import pytest

from repro.theory import (
    DriftParameters,
    defect_drop_interval,
    drift,
    drift_minimum,
    drift_roots,
    paper_a1_epsilon_bound,
    paper_a1_estimate,
    paper_a2_estimate,
)

PARAMS = DriftParameters(k=64, d=2, p=0.01)


class TestParameters:
    def test_valid(self):
        DriftParameters(k=32, d=2, p=0.0)

    def test_d_below_two_rejected(self):
        with pytest.raises(ValueError):
            DriftParameters(k=32, d=1, p=0.01)

    def test_k_must_exceed_d_squared(self):
        with pytest.raises(ValueError):
            DriftParameters(k=4, d=2, p=0.01)

    def test_p_range(self):
        with pytest.raises(ValueError):
            DriftParameters(k=32, d=2, p=1.0)
        with pytest.raises(ValueError):
            DriftParameters(k=32, d=2, p=-0.1)


class TestDriftFunction:
    def test_value_at_zero_is_positive(self):
        """f(0) = p d²/k > 0: failures push the defect up from zero."""
        assert drift(PARAMS, 0.0) == pytest.approx(0.01 * 4 / 64)

    def test_negative_in_the_middle(self):
        """For small pd, the defect contracts near b = 1/2 (Lemma 7)."""
        assert drift(PARAMS, 0.5) < 0.0

    def test_positive_near_one(self):
        """Near total defect the system drifts to collapse."""
        assert drift(PARAMS, 1.0) > 0.0

    def test_vectorised(self):
        values = drift(PARAMS, np.array([0.0, 0.5, 1.0]))
        assert values.shape == (3,)
        assert values[0] > 0 > values[1]

    def test_zero_p_drift_nonpositive_below_tipping(self):
        """With no failures the defect contracts everywhere below the
        tipping region b* = ((k-d²)/k)^(d/(d-1))."""
        params = DriftParameters(k=64, d=2, p=0.0)
        tipping = ((64 - 4) / 64) ** 2.0
        bs = np.linspace(0.0, 0.98 * tipping, 50)
        assert np.all(drift(params, bs) <= 1e-12)


class TestMinimumAndRoots:
    def test_minimum_near_half(self):
        minimiser, minimum = drift_minimum(PARAMS)
        assert 0.3 < minimiser < 0.7
        assert minimum < 0.0

    def test_minimum_below_paper_bound(self):
        """The paper asserts min f < -d/(8k); the constant is approximate
        (at finite k the true minimum is within a factor ~2 of it)."""
        _, minimum = drift_minimum(PARAMS)
        assert minimum < -PARAMS.d / (16.0 * PARAMS.k)

    def test_roots_bracket_minimum(self):
        a1, a2 = drift_roots(PARAMS)
        minimiser, _ = drift_minimum(PARAMS)
        assert 0.0 < a1 < minimiser < a2 < 1.0

    def test_roots_are_roots(self):
        a1, a2 = drift_roots(PARAMS)
        assert drift(PARAMS, a1) == pytest.approx(0.0, abs=1e-12)
        assert drift(PARAMS, a2) == pytest.approx(0.0, abs=1e-12)

    def test_a1_close_to_paper_estimate(self):
        a1, _ = drift_roots(PARAMS)
        leading = paper_a1_estimate(PARAMS)
        epsilon = paper_a1_epsilon_bound(PARAMS)
        assert leading <= a1 <= leading * (1 + epsilon) * 1.05

    def test_a2_close_to_paper_estimate(self):
        _, a2 = drift_roots(PARAMS)
        estimate = paper_a2_estimate(PARAMS)
        assert abs(a2 - estimate) < 0.25

    def test_a1_scales_linearly_with_p(self):
        roots = []
        for p in (0.005, 0.01, 0.02):
            a1, _ = drift_roots(DriftParameters(k=64, d=2, p=p))
            roots.append(a1)
        assert roots[1] / roots[0] == pytest.approx(2.0, rel=0.2)
        assert roots[2] / roots[1] == pytest.approx(2.0, rel=0.2)

    def test_no_roots_when_pd_too_large(self):
        with pytest.raises(ValueError):
            drift_roots(DriftParameters(k=16, d=2, p=0.45))


class TestDropInterval:
    def test_interval_inside_roots(self):
        c1 = 0.1 * PARAMS.d / PARAMS.k
        b1, b2 = defect_drop_interval(PARAMS, c1)
        a1, a2 = drift_roots(PARAMS)
        assert a1 < b1 < b2 < a2

    def test_interval_widens_with_smaller_c1(self):
        small = defect_drop_interval(PARAMS, 0.005 * PARAMS.d / PARAMS.k)
        large = defect_drop_interval(PARAMS, 0.05 * PARAMS.d / PARAMS.k)
        assert small[0] < large[0] and small[1] > large[1]

    def test_too_deep_c1_raises(self):
        with pytest.raises(ValueError):
            defect_drop_interval(PARAMS, 1.0)

    def test_invalid_c1_raises(self):
        with pytest.raises(ValueError):
            defect_drop_interval(PARAMS, 0.0)
