"""Unit tests for defect accounting (the Theorem 4 quantities)."""

import pytest

from repro.analysis import (
    defect_of_columns,
    exact_defect,
    sampled_defect,
    tuple_space_size,
)
from repro.core import OverlayNetwork, ThreadMatrix


class TestTupleSpace:
    def test_counts(self):
        assert tuple_space_size(6, 2) == 15
        assert tuple_space_size(10, 3) == 120
        assert tuple_space_size(4, 4) == 1


class TestExactDefect:
    def test_healthy_network_no_defects(self, tiny_net):
        summary = exact_defect(tiny_net.matrix, 2)
        assert summary.mean_defect == 0.0
        assert summary.bad_fraction == 0.0
        assert summary.histogram[0] == 1.0
        assert summary.exact

    def test_histogram_sums_to_one(self, tiny_net):
        tiny_net.fail(tiny_net.matrix.node_ids[-1])
        summary = exact_defect(tiny_net.matrix, 2, tiny_net.failed)
        assert sum(summary.histogram) == pytest.approx(1.0)

    def test_mean_matches_histogram(self, tiny_net):
        tiny_net.fail(tiny_net.matrix.node_ids[-1])
        summary = exact_defect(tiny_net.matrix, 2, tiny_net.failed)
        expected = sum(j * h for j, h in enumerate(summary.histogram))
        assert summary.mean_defect == pytest.approx(expected)

    def test_single_failure_defect_formula(self, rng):
        """One bottom node failing with fresh rod threads around it."""
        m = ThreadMatrix(k=4)
        m.join(0, 2, rng, columns=[0, 1])
        # hanging: col0 -> node0 (dead if failed), col1 -> node0, col2/3 -> rod
        summary = exact_defect(m, 2, failed={0})
        # tuples: {0,1} defect 2; {0,2},{0,3},{1,2},{1,3} defect 1; {2,3} defect 0
        assert summary.mean_defect == pytest.approx((2 + 4 * 1) / 6)
        assert summary.bad_fraction == pytest.approx(5 / 6)

    def test_guard_on_huge_space(self, rng):
        net = OverlayNetwork(k=40, d=5, seed=1)
        net.grow(5)
        with pytest.raises(ValueError):
            exact_defect(net.matrix, 5, max_tuples=1000)

    def test_normalized_defect(self, rng):
        m = ThreadMatrix(k=4)
        m.join(0, 2, rng, columns=[0, 1])
        summary = exact_defect(m, 2, failed={0})
        assert summary.normalized_defect == pytest.approx(summary.mean_defect / 2)


class TestSampledDefect:
    def test_agrees_with_exact_on_small_net(self, tiny_net, rng):
        tiny_net.fail(tiny_net.matrix.node_ids[-1])
        tiny_net.fail(tiny_net.matrix.node_ids[-2])
        exact = exact_defect(tiny_net.matrix, 2, tiny_net.failed)
        sampled = sampled_defect(
            tiny_net.matrix, 2, rng, samples=4000, failed=tiny_net.failed
        )
        assert sampled.mean_defect == pytest.approx(exact.mean_defect, abs=0.05)
        assert sampled.bad_fraction == pytest.approx(exact.bad_fraction, abs=0.05)

    def test_zero_samples_rejected(self, tiny_net, rng):
        with pytest.raises(ValueError):
            sampled_defect(tiny_net.matrix, 2, rng, samples=0)

    def test_not_exact_flag(self, tiny_net, rng):
        summary = sampled_defect(tiny_net.matrix, 2, rng, samples=10)
        assert not summary.exact
        assert summary.samples == 10


class TestDefectOfColumns:
    def test_explicit_tuple(self, rng):
        m = ThreadMatrix(k=4)
        m.join(0, 2, rng, columns=[0, 1])
        assert defect_of_columns(m, (2, 3)) == 0
        assert defect_of_columns(m, (0, 1), failed={0}) == 2

    def test_fresh_arrival_defect_is_its_connectivity_loss(self, small_net):
        """Lemma 3 sanity: the defect of the tuple a node picked equals
        d minus the connectivity it actually got."""
        victim = small_net.matrix.node_ids[5]
        small_net.fail(victim)
        grant = small_net.join()
        columns = tuple(grant.columns)
        # measure as if the node had not yet joined: use pre-join structure
        # by removing it again
        connectivity = small_net.connectivity(grant.node_id)
        small_net.leave(grant.node_id)
        defect = defect_of_columns(small_net.matrix, columns, small_net.failed)
        assert defect == small_net.d - connectivity
