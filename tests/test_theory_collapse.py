"""Unit tests for collapse dynamics (Theorem 5 machinery)."""



from repro.theory import (
    mean_walk_collapse_time,
    measure_collapse_time,
    simulate_defect_walk,
)


class TestAbstractWalk:
    def test_high_p_collapses_fast(self, rng):
        result = simulate_defect_walk(k=12, d=2, p=0.45, rng=rng, max_steps=200_000)
        assert result.collapsed
        assert result.steps < 200_000
        assert result.peak_defect >= result.threshold

    def test_low_p_survives(self, rng):
        result = simulate_defect_walk(k=48, d=2, p=0.01, rng=rng, max_steps=30_000)
        assert not result.collapsed
        assert result.peak_defect < 0.5

    def test_threshold_override(self, rng):
        result = simulate_defect_walk(
            k=12, d=2, p=0.45, rng=rng, max_steps=100_000, threshold=0.2
        )
        assert result.threshold == 0.2

    def test_start_at_threshold_collapses_immediately(self, rng):
        result = simulate_defect_walk(
            k=12, d=2, p=0.4, rng=rng, threshold=0.3, start=0.35, max_steps=100
        )
        assert result.collapsed
        assert result.steps <= 2

    def test_collapse_time_grows_with_k(self, rng):
        """Theorem 5 shape: mean collapse steps increase with k/d³."""
        means = []
        for k in (8, 12, 16):
            mean, _ = mean_walk_collapse_time(
                k=k, d=2, p=0.42, runs=10, rng=rng, max_steps=400_000
            )
            means.append(mean)
        assert means[0] < means[1] < means[2]

    def test_censoring_reported(self, rng):
        mean, censored = mean_walk_collapse_time(
            k=64, d=2, p=0.01, runs=3, rng=rng, max_steps=2_000
        )
        assert censored == 3
        assert mean == 2_000


class TestRealNetworkCollapse:
    def test_extreme_p_collapses_real_network(self):
        result = measure_collapse_time(
            k=8, d=2, p=0.6, seed=1, max_steps=3_000, check_every=20,
            defect_samples=40, threshold=0.5,
        )
        assert result.collapsed

    def test_small_p_does_not_collapse_quickly(self):
        result = measure_collapse_time(
            k=24, d=2, p=0.01, seed=2, max_steps=400, check_every=100,
            defect_samples=30,
        )
        assert not result.collapsed
        assert result.steps == 400

    def test_immediate_repair_prevents_collapse(self):
        """With per-step repairs the defect never accumulates at all."""
        result = measure_collapse_time(
            k=8, d=2, p=0.6, seed=4, max_steps=400, check_every=50,
            defect_samples=30, threshold=0.5, repair_interval=1,
        )
        assert not result.collapsed
        assert result.peak_defect == 0.0

    def test_defaults_resolve_threshold(self):
        result = measure_collapse_time(
            k=24, d=2, p=0.02, seed=3, max_steps=100, check_every=100,
            defect_samples=20,
        )
        assert 0.5 < result.threshold <= 1.0
