"""Unit tests for priority encoding transmission."""

import numpy as np
import pytest

from repro.coding.pet import PETEncoder, PETLayer


@pytest.fixture
def layers(rng):
    return [
        PETLayer("base", threshold=2, data=bytes(rng.integers(0, 256, 100, dtype=np.uint8))),
        PETLayer("mid", threshold=4, data=bytes(rng.integers(0, 256, 300, dtype=np.uint8))),
        PETLayer("full", threshold=8, data=bytes(rng.integers(0, 256, 900, dtype=np.uint8))),
    ]


@pytest.fixture
def encoder(layers):
    return PETEncoder(layers, n=8)


class TestGeometry:
    def test_stripe_shape(self, encoder):
        stripes = encoder.encode()
        assert stripes.shape == (8, encoder.stripe_bytes)

    def test_overhead_reflects_redundancy(self, encoder, layers):
        # base layer is stored at n/m = 4x, full layer at 1x
        assert encoder.overhead > 1.0

    def test_validation(self, layers):
        with pytest.raises(ValueError):
            PETEncoder([], n=4)
        with pytest.raises(ValueError):
            PETEncoder(layers, n=4)  # threshold 8 > n
        with pytest.raises(ValueError):
            PETEncoder([layers[0], layers[0]], n=8)  # duplicate names
        with pytest.raises(ValueError):
            PETLayer("x", threshold=0, data=b"")


class TestStaircase:
    def test_decodable_layers(self, encoder):
        assert encoder.decodable_layers(1) == []
        assert encoder.decodable_layers(2) == ["base"]
        assert encoder.decodable_layers(5) == ["base", "mid"]
        assert encoder.decodable_layers(8) == ["base", "mid", "full"]

    @pytest.mark.parametrize("received,expected", [(2, 1), (4, 2), (8, 3)])
    def test_decode_staircase(self, encoder, layers, rng, received, expected):
        stripes = encoder.encode()
        indices = sorted(int(i) for i in rng.choice(8, size=received, replace=False))
        decoded = encoder.decode(indices, stripes[indices])
        recovered = [name for name, data in decoded.items() if data is not None]
        assert len(recovered) == expected
        for layer in layers:
            if layer.threshold <= received:
                assert decoded[layer.name] == layer.data
            else:
                assert decoded[layer.name] is None

    def test_any_subset_works(self, encoder, layers, rng):
        stripes = encoder.encode()
        for _ in range(10):
            indices = sorted(int(i) for i in rng.choice(8, size=4, replace=False))
            decoded = encoder.decode(indices, stripes[indices])
            assert decoded["base"] == layers[0].data
            assert decoded["mid"] == layers[1].data

    def test_one_stripe_decodes_nothing(self, encoder):
        stripes = encoder.encode()
        decoded = encoder.decode([3], stripes[[3]])
        assert all(v is None for v in decoded.values())

    def test_threshold_one_layer_always_decodes(self, rng):
        layer = PETLayer("critical", threshold=1,
                         data=bytes(rng.integers(0, 256, 40, dtype=np.uint8)))
        encoder = PETEncoder([layer], n=6)
        stripes = encoder.encode()
        decoded = encoder.decode([5], stripes[[5]])
        assert decoded["critical"] == layer.data

    def test_shape_validation(self, encoder):
        stripes = encoder.encode()
        with pytest.raises(ValueError):
            encoder.decode([0, 1], stripes[[0]])
        with pytest.raises(ValueError):
            encoder.decode([0], stripes[[0]][:, :-1])


class TestBandwidthClasses:
    def test_class_determines_quality(self, encoder, layers, rng):
        """§5's story: a DSL peer (2 threads) gets the base layer, cable
        (4) adds the middle, T1 (8) gets everything."""
        stripes = encoder.encode()
        for units, expected in ((2, {"base"}), (4, {"base", "mid"}),
                                (8, {"base", "mid", "full"})):
            indices = sorted(int(i) for i in rng.choice(8, size=units,
                                                        replace=False))
            decoded = encoder.decode(indices, stripes[indices])
            got = {name for name, data in decoded.items() if data is not None}
            assert got == expected


class TestPETProperties:
    """Property-based: the staircase holds for arbitrary geometry."""

    def test_random_geometry_staircase(self, rng):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @settings(max_examples=25, deadline=None)
        @given(
            seed=st.integers(min_value=0, max_value=2**31 - 1),
            n=st.integers(min_value=2, max_value=12),
            layer_count=st.integers(min_value=1, max_value=3),
        )
        def inner(seed, n, layer_count):
            local = np.random.default_rng(seed)
            layer_count = min(layer_count, n)
            thresholds = sorted(
                int(t) for t in local.choice(
                    np.arange(1, n + 1), size=layer_count, replace=False
                )
            )
            layers = [
                PETLayer(
                    f"layer{i}", threshold=t,
                    data=bytes(local.integers(0, 256, size=int(local.integers(1, 80)),
                                              dtype=np.uint8)),
                )
                for i, t in enumerate(thresholds)
            ]
            encoder = PETEncoder(layers, n=n)
            stripes = encoder.encode()
            received = int(local.integers(1, n + 1))
            indices = sorted(
                int(i) for i in local.choice(n, size=received, replace=False)
            )
            decoded = encoder.decode(indices, stripes[indices])
            for layer in layers:
                if layer.threshold <= received:
                    assert decoded[layer.name] == layer.data
                else:
                    assert decoded[layer.name] is None

        inner()
