"""Snapshot schema, Prometheus rendering, and the scrape endpoint."""

import asyncio
import json

from repro.obs import (
    Registry,
    SCHEMA,
    prometheus_text,
    snapshot_json,
    snapshot_obj,
    validate_snapshot,
)
from repro.obs.http import MetricsServer, PeriodicSampler


def _populated_registry(name="r") -> Registry:
    registry = Registry(name)
    registry.counter("engine.events").inc(3)
    registry.gauge("net.rank").set(5)
    hist = registry.histogram("sim.slot_seconds", bounds=(0.001, 0.01))
    hist.observe(0.0005)
    hist.observe(0.5)
    return registry


class TestSnapshotSchema:
    def test_snapshot_validates(self):
        obj = snapshot_obj(_populated_registry())
        assert obj["schema"] == SCHEMA
        assert validate_snapshot(obj) == []

    def test_mapping_of_registries(self):
        obj = snapshot_obj({
            "server:1": _populated_registry("server:1"),
            "peer:2": _populated_registry("peer:2"),
        })
        assert set(obj["registries"]) == {"server:1", "peer:2"}
        assert validate_snapshot(obj) == []

    def test_json_round_trip(self):
        text = snapshot_json(_populated_registry())
        assert text.endswith("\n")
        assert validate_snapshot(json.loads(text)) == []

    def test_wrong_schema_tag_rejected(self):
        obj = snapshot_obj(_populated_registry())
        obj["schema"] = "repro.obs/999"
        assert any("schema" in e for e in validate_snapshot(obj))

    def test_negative_counter_rejected(self):
        obj = snapshot_obj(_populated_registry())
        obj["registries"]["r"]["counters"]["engine.events"] = -1
        assert any("non-negative" in e for e in validate_snapshot(obj))

    def test_histogram_count_mismatch_rejected(self):
        obj = snapshot_obj(_populated_registry())
        obj["registries"]["r"]["histograms"]["sim.slot_seconds"]["count"] = 99
        assert any("sum to count" in e for e in validate_snapshot(obj))

    def test_missing_section_rejected(self):
        obj = snapshot_obj(_populated_registry())
        del obj["registries"]["r"]["gauges"]
        assert any("sections" in e for e in validate_snapshot(obj))

    def test_non_dict_input_rejected(self):
        assert validate_snapshot([1, 2]) != []


class TestPrometheusText:
    def test_names_prefixed_and_sanitised(self):
        text = prometheus_text(_populated_registry())
        assert 'repro_engine_events{registry="r"} 3' in text
        assert 'repro_net_rank{registry="r"} 5' in text
        assert "engine.events" not in text  # dots never leak

    def test_type_declared_once_per_metric(self):
        text = prometheus_text({
            "a": _populated_registry("a"), "b": _populated_registry("b"),
        })
        assert text.count("# TYPE repro_engine_events counter") == 1

    def test_histogram_buckets_are_cumulative(self):
        text = prometheus_text(_populated_registry())
        lines = [l for l in text.splitlines() if "slot_seconds_bucket" in l]
        assert lines == [
            'repro_sim_slot_seconds_bucket{registry="r",le="0.001"} 1',
            'repro_sim_slot_seconds_bucket{registry="r",le="0.01"} 1',
            'repro_sim_slot_seconds_bucket{registry="r",le="+Inf"} 2',
        ]
        assert 'repro_sim_slot_seconds_count{registry="r"} 2' in text

    def test_accepts_a_prebuilt_snapshot(self):
        obj = snapshot_obj(_populated_registry())
        assert prometheus_text(obj) == prometheus_text(_populated_registry())


class TestMetricsServer:
    def _request(self, raw: bytes) -> bytes:
        async def _run() -> bytes:
            server = await MetricsServer(
                lambda: snapshot_obj(_populated_registry())
            ).start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(raw)
                await writer.drain()
                response = await reader.read()
                writer.close()
                return response
            finally:
                await server.stop()
        return asyncio.run(_run())

    def test_metrics_endpoint_serves_prometheus(self):
        response = self._request(b"GET /metrics HTTP/1.0\r\n\r\n")
        assert response.startswith(b"HTTP/1.0 200 OK")
        assert b"text/plain; version=0.0.4" in response
        assert b'repro_engine_events{registry="r"} 3' in response

    def test_json_endpoint_serves_valid_snapshot(self):
        response = self._request(b"GET /metrics.json HTTP/1.0\r\n\r\n")
        body = response.split(b"\r\n\r\n", 1)[1]
        assert validate_snapshot(json.loads(body)) == []

    def test_unknown_path_is_404(self):
        assert self._request(b"GET /nope HTTP/1.0\r\n\r\n").startswith(
            b"HTTP/1.0 404"
        )

    def test_non_get_is_405(self):
        assert self._request(b"POST /metrics HTTP/1.0\r\n\r\n").startswith(
            b"HTTP/1.0 405"
        )


class TestPeriodicSampler:
    def test_sample_once_and_bounded_history(self):
        async def _run():
            registry = Registry("r")
            counter = registry.counter("ticks")
            sampler = PeriodicSampler(
                lambda: snapshot_obj(registry), capacity=2,
            )
            for _ in range(4):
                counter.inc()
                sampler.sample_once()
            assert len(sampler.samples) == 2
            latest = sampler.latest()
            assert latest["registries"]["r"]["counters"]["ticks"] == 4
        asyncio.run(_run())

    def test_background_task_samples_on_cadence(self):
        async def _run():
            registry = Registry("r")
            sampler = PeriodicSampler(
                lambda: snapshot_obj(registry), interval=0.01,
            ).start()
            await asyncio.sleep(0.05)
            await sampler.stop()
            assert len(sampler.samples) >= 2
        asyncio.run(_run())
