"""Property-based tests of the GF(2^8) field axioms and linear algebra."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf import field, linalg

elements = st.integers(min_value=0, max_value=255)
nonzero_elements = st.integers(min_value=1, max_value=255)


class TestFieldAxioms:
    @given(elements, elements)
    def test_addition_commutative(self, a, b):
        assert field.add(a, b) == field.add(b, a)

    @given(elements, elements, elements)
    def test_addition_associative(self, a, b, c):
        assert field.add(field.add(a, b), c) == field.add(a, field.add(b, c))

    @given(elements)
    def test_additive_identity_and_inverse(self, a):
        assert field.add(a, 0) == a
        assert field.add(a, a) == 0  # characteristic 2: x is its own negative

    @given(elements, elements)
    def test_multiplication_commutative(self, a, b):
        assert field.mul(a, b) == field.mul(b, a)

    @given(elements, elements, elements)
    def test_multiplication_associative(self, a, b, c):
        assert field.mul(field.mul(a, b), c) == field.mul(a, field.mul(b, c))

    @given(elements)
    def test_multiplicative_identity(self, a):
        assert field.mul(a, 1) == a

    @given(nonzero_elements)
    def test_multiplicative_inverse(self, a):
        assert field.mul(a, field.inv(a)) == 1

    @given(elements, elements, elements)
    def test_distributivity(self, a, b, c):
        left = field.mul(a, field.add(b, c))
        right = field.add(field.mul(a, b), field.mul(a, c))
        assert left == right

    @given(nonzero_elements, st.integers(min_value=-3, max_value=6),
           st.integers(min_value=-3, max_value=6))
    def test_power_laws(self, a, m, n):
        assert field.power(a, m + n) == field.mul(field.power(a, m), field.power(a, n))


def matrices(max_dim=6):
    """Strategy for small random uint8 matrices."""
    return st.tuples(
        st.integers(min_value=1, max_value=max_dim),
        st.integers(min_value=1, max_value=max_dim),
        st.integers(min_value=0, max_value=2**31 - 1),
    ).map(
        lambda t: np.random.default_rng(t[2]).integers(
            0, 256, size=(t[0], t[1]), dtype=np.uint8
        )
    )


class TestLinalgProperties:
    @settings(max_examples=40)
    @given(matrices())
    def test_rref_idempotent(self, a):
        reduced, pivots = linalg.rref(a)
        again, pivots2 = linalg.rref(reduced)
        assert np.array_equal(reduced, again)
        assert pivots == pivots2

    @settings(max_examples=40)
    @given(matrices())
    def test_rank_bounded(self, a):
        r = linalg.rank(a)
        assert 0 <= r <= min(a.shape)

    @settings(max_examples=40)
    @given(matrices())
    def test_rank_transpose_invariant(self, a):
        assert linalg.rank(a) == linalg.rank(a.T.copy())

    @settings(max_examples=30)
    @given(st.integers(min_value=1, max_value=6),
           st.integers(min_value=0, max_value=2**31 - 1))
    def test_solve_inverts_matvec(self, n, seed):
        rng = np.random.default_rng(seed)
        a = linalg.random_full_rank(n, rng)
        x = rng.integers(0, 256, size=n, dtype=np.uint8)
        assert np.array_equal(linalg.solve(a, linalg.matvec(a, x)), x)

    @settings(max_examples=30)
    @given(matrices(max_dim=5), st.integers(min_value=0, max_value=2**31 - 1))
    def test_rank_submultiplicative(self, a, seed):
        rng = np.random.default_rng(seed)
        b = rng.integers(0, 256, size=(a.shape[1], 4), dtype=np.uint8)
        product_rank = linalg.rank(linalg.matmul(a, b))
        assert product_rank <= min(linalg.rank(a), linalg.rank(b))
