"""Property-based tests of the RLNC codec: decode correctness is invariant
to packet ordering, loss, re-mixing depth and generation geometry."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding import Decoder, GenerationParams, Recoder, SourceEncoder


@settings(max_examples=25, deadline=None)
@given(
    generation_size=st.integers(min_value=1, max_value=10),
    payload_size=st.integers(min_value=1, max_value=40),
    content_len=st.integers(min_value=0, max_value=400),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_roundtrip_any_geometry(generation_size, payload_size, content_len, seed):
    """Random geometry, random content: encode → decode must round-trip."""
    rng = np.random.default_rng(seed)
    params = GenerationParams(generation_size=generation_size, payload_size=payload_size)
    content = bytes(rng.integers(0, 256, size=content_len, dtype=np.uint8))
    encoder = SourceEncoder(content, params, rng)
    decoder = Decoder(params, encoder.generation_count)
    guard = 0
    while not decoder.is_complete:
        decoder.push(encoder.emit())
        guard += 1
        assert guard < 20_000
    assert decoder.recover(len(content)) == content


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    chain_length=st.integers(min_value=1, max_value=6),
)
def test_recoding_chain_preserves_decodability(seed, chain_length):
    """A pipeline of recoders of any depth still delivers the content."""
    rng = np.random.default_rng(seed)
    params = GenerationParams(generation_size=5, payload_size=16)
    content = bytes(rng.integers(0, 256, size=100, dtype=np.uint8))
    encoder = SourceEncoder(content, params, rng)
    chain = [
        Recoder(params, encoder.generation_count, np.random.default_rng(seed + i), i)
        for i in range(chain_length)
    ]
    decoder = Decoder(params, encoder.generation_count)
    guard = 0
    while not decoder.is_complete:
        packet = encoder.emit()
        for hop in chain:
            hop.receive(packet)
            packet = hop.emit(packet.generation)
            assert packet is not None
        decoder.push(packet)
        guard += 1
        assert guard < 20_000
    assert decoder.recover(len(content)) == content


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    drop_pattern=st.lists(st.booleans(), min_size=0, max_size=60),
)
def test_loss_only_delays_never_corrupts(seed, drop_pattern):
    """Arbitrary packet loss patterns cannot corrupt the decoded output."""
    rng = np.random.default_rng(seed)
    params = GenerationParams(generation_size=4, payload_size=12)
    content = bytes(rng.integers(0, 256, size=60, dtype=np.uint8))
    encoder = SourceEncoder(content, params, rng)
    decoder = Decoder(params, encoder.generation_count)
    for drop in drop_pattern:
        packet = encoder.emit()
        if not drop:
            decoder.push(packet)
    # top up until complete, then verify
    guard = 0
    while not decoder.is_complete:
        decoder.push(encoder.emit())
        guard += 1
        assert guard < 20_000
    assert decoder.recover(len(content)) == content


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_rank_never_decreases_and_caps(seed):
    rng = np.random.default_rng(seed)
    params = GenerationParams(generation_size=6, payload_size=8)
    content = bytes(rng.integers(0, 256, size=48, dtype=np.uint8))
    encoder = SourceEncoder(content, params, rng)
    decoder = Decoder(params, encoder.generation_count)
    last = 0
    for _ in range(30):
        decoder.push(encoder.emit())
        rank = decoder.total_rank
        assert rank >= last
        assert rank <= decoder.total_dof
        last = rank


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_systematic_and_coded_agree(seed):
    """Systematic-first and pure-random emission decode identical content."""
    rng = np.random.default_rng(seed)
    params = GenerationParams(generation_size=4, payload_size=8)
    content = bytes(rng.integers(0, 256, size=64, dtype=np.uint8))
    for systematic in (False, True):
        encoder = SourceEncoder(
            content, params, np.random.default_rng(seed), systematic_first=systematic
        )
        decoder = Decoder(params, encoder.generation_count)
        guard = 0
        while not decoder.is_complete:
            decoder.push(encoder.emit())
            guard += 1
            assert guard < 20_000
        assert decoder.recover(len(content)) == content
