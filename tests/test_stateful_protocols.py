"""Stateful property tests: hypothesis drives the whole protocol surface.

The state machine issues arbitrary interleavings of hello / good-bye /
fail / complain / repair / congestion operations against a live server
and, after every step, checks the system-wide invariants the paper's
analysis depends on:

* matrix internal consistency (chains sorted, rows/columns mutually
  consistent, exactly k hanging threads);
* registry/matrix agreement;
* every *working* node that is not failure-affected has in-degree equal
  to its current thread count;
* the overlay stays acyclic (the §6 invariant);
* repairs leave no trace of the victim.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.core import CoordinationServer
from repro.core.topology import build_overlay_graph

K, D = 8, 2


class ProtocolMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.rng = np.random.default_rng(0xC0FFEE)
        self.server = CoordinationServer(K, D, self.rng)

    # ------------------------------------------------------------------
    # Rules

    @rule(degree=st.sampled_from([0, 0, 0, 3]))  # mostly default d
    def hello(self, degree):
        if self.server.population >= 60:
            return  # keep instances small
        self.server.hello(degree or None)

    @rule(pick=st.integers(min_value=0, max_value=10**6))
    def goodbye(self, pick):
        working = self.server.working_nodes
        if not working:
            return
        self.server.goodbye(working[pick % len(working)])

    @rule(pick=st.integers(min_value=0, max_value=10**6))
    def fail(self, pick):
        working = self.server.working_nodes
        if not working:
            return
        self.server.fail(working[pick % len(working)])

    @rule(pick=st.integers(min_value=0, max_value=10**6))
    def repair_one(self, pick):
        failed = sorted(self.server.failed)
        if not failed:
            return
        self.server.repair(failed[pick % len(failed)])

    @rule()
    def repair_all(self):
        self.server.repair_all()

    @rule(pick=st.integers(min_value=0, max_value=10**6))
    def complain(self, pick):
        working = self.server.working_nodes
        if not working:
            return
        reporter = working[pick % len(working)]
        columns = sorted(self.server.matrix.columns_of(reporter))
        self.server.complain(reporter, columns[pick % len(columns)])

    @rule(pick=st.integers(min_value=0, max_value=10**6))
    def congestion_drop(self, pick):
        working = self.server.working_nodes
        candidates = [
            n for n in working if self.server.matrix.row(n).degree > 1
        ]
        if not candidates:
            return
        self.server.congestion_drop(candidates[pick % len(candidates)])

    @rule(pick=st.integers(min_value=0, max_value=10**6))
    def congestion_restore(self, pick):
        candidates = [
            n for n in self.server.working_nodes
            if self.server.matrix.row(n).degree < K
        ]
        if not candidates:
            return
        self.server.congestion_restore(candidates[pick % len(candidates)])

    # ------------------------------------------------------------------
    # Invariants

    @invariant()
    def matrix_is_consistent(self):
        self.server.matrix.check_invariants()

    @invariant()
    def registry_matches_matrix(self):
        assert set(self.server.registry) == set(self.server.matrix.node_ids)
        assert self.server.failed <= set(self.server.registry)

    @invariant()
    def hanging_pool_always_k(self):
        assert len(self.server.matrix.hanging_owners()) == K

    @invariant()
    def overlay_stays_acyclic(self):
        graph = build_overlay_graph(self.server.matrix)
        assert graph.is_acyclic()

    @invariant()
    def in_degree_equals_threads(self):
        graph = build_overlay_graph(self.server.matrix, self.server.failed)
        failed = self.server.failed
        matrix = self.server.matrix
        for node in graph.nodes:
            degree = matrix.row(node).degree
            dead = sum(
                1 for parent in matrix.parents_of(node).values()
                if parent != -1 and parent in failed
            )
            assert graph.in_degree(node) == degree - dead


ProtocolMachineTest = ProtocolMachine.TestCase
ProtocolMachineTest.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)
