"""The chaos tier: deterministic fault-injection scenarios in memory.

Every scenario in :data:`repro.net.testing.SCENARIOS` runs the real
:class:`ServerNode` / :class:`PeerNode` code against the virtual
network — no sockets, virtual time — and asserts the §3-§6 protocol
invariants.  The whole tier runs in a couple of seconds of wall clock.
"""

import pytest

from repro.net.testing import (
    SCENARIOS,
    ChaosConfig,
    ChaosHarness,
    run_scenario,
    run_scenario_sync,
)


class TestCatalogue:
    def test_at_least_ten_scenarios(self):
        assert len(SCENARIOS) >= 10

    def test_every_scenario_documented(self):
        for spec in SCENARIOS.values():
            assert spec.description, spec.name

    def test_unknown_scenario_is_a_clear_error(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            run_scenario_sync("no_such_scenario")

    def test_virtual_only_scenario_refuses_live_transport(self):
        with pytest.raises(ValueError, match="virtual"):
            run_scenario_sync("lossy_links", transport="live")


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_scenario_passes(name):
    result = run_scenario_sync(name, seed=0)
    assert result.ok, "\n".join([result.summary(), *result.violations])
    assert result.converged
    assert result.trace, "virtual run produced no event trace"


@pytest.mark.parametrize("name", ["crash_parent_midstream", "lossy_links"])
def test_same_seed_same_trace(name):
    """Acceptance: one seed, two runs, byte-identical event traces."""
    first = run_scenario_sync(name, seed=11)
    second = run_scenario_sync(name, seed=11)
    assert first.ok and second.ok
    assert first.trace == second.trace
    assert first.elapsed == second.elapsed


def test_crash_parent_acceptance():
    """The ISSUE's named scenario: kill a parent mid-stream; every
    surviving peer must still decode all generations."""
    result = run_scenario_sync("crash_parent_midstream", seed=0)
    assert result.ok
    assert result.killed, "no peer was killed"
    assert result.repairs >= 1
    # Convergence in ChaosHarness covers only survivors, and
    # check_invariants compares every survivor's decode to the content.
    assert not result.violations


def test_no_socket_is_ever_opened(monkeypatch):
    """The virtual tier must not touch the real network stack (the
    event loop's internal self-pipe is the only socket allowed)."""
    import asyncio
    import socket

    async def _bomb(*args, **kwargs):
        raise AssertionError("chaos scenario opened a real connection")

    monkeypatch.setattr(asyncio, "open_connection", _bomb)
    monkeypatch.setattr(asyncio, "start_server", _bomb)
    monkeypatch.setattr(
        socket.socket, "connect",
        lambda *a, **k: (_ for _ in ()).throw(
            AssertionError("chaos scenario dialed a real socket")
        ),
    )
    result = run_scenario_sync("crash_parent_midstream", seed=0)
    assert result.ok


def test_harness_rejects_unknown_transport():
    with pytest.raises(ValueError, match="transport"):
        ChaosHarness(ChaosConfig(), transport="carrier-pigeon")


def test_run_scenario_is_a_coroutine():
    import asyncio

    result = asyncio.run(run_scenario("baseline", seed=2))
    assert result.ok


class TestFlightRecorderDump:
    """A failing invariant must come with a flight-recorder dump."""

    def _run_with_forced_violation(self):
        import asyncio

        async def _scenario():
            harness = ChaosHarness(ChaosConfig(peers=3), transport="virtual")
            try:
                await harness.start()
                await harness.run_until(harness.converged)
                # Corrupt one peer's thread map behind the server's back:
                # the matrix-vs-engine invariant must now fail.
                peer = harness.peers[0]
                column = next(iter(peer.engine.parents))
                peer.engine.parents[column] = 9999
                await harness.settle()
                harness.check_invariants()
                result = harness.result("forced_violation")
            finally:
                await harness.teardown()
            return result

        return asyncio.run(_scenario())

    def test_violation_emits_dump_of_implicated_engines(self):
        result = self._run_with_forced_violation()
        assert result.violations, "tampering did not trip the invariant"
        assert "flight recorder: server" in result.flight_dump
        assert "flight recorder: peer0" in result.flight_dump
        # The dump carries actual engine steps, not empty recorders.
        assert "->" in result.flight_dump

    def test_summary_includes_the_dump(self):
        result = self._run_with_forced_violation()
        assert not result.ok
        assert "flight recorder" in result.summary()

    def test_passing_run_has_no_dump(self):
        result = run_scenario_sync("baseline", seed=0)
        assert result.ok
        assert result.flight_dump == ""
