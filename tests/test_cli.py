"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_scenario_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenario", "nonsense"])

    def test_defaults(self):
        args = build_parser().parse_args(["overlay"])
        assert args.k == 24 and args.d == 3 and args.peers == 200

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.peers == 8 and args.kill == -1 and args.deadline == 60.0

    def test_join_requires_port(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["join"])


class TestCommands:
    def test_overlay(self, capsys):
        code = main(["overlay", "--k", "10", "--d", "2", "--peers", "30",
                     "--defect-samples", "30"])
        out = capsys.readouterr().out
        assert code == 0
        assert "connectivity histogram" in out
        assert "depth" in out

    def test_overlay_with_failures_and_uniform(self, capsys):
        code = main(["overlay", "--k", "10", "--d", "2", "--peers", "30",
                     "--fail", "3", "--insert-mode", "uniform",
                     "--defect-samples", "30"])
        assert code == 0
        assert "failed=3" in capsys.readouterr().out

    def test_collapse(self, capsys):
        code = main(["collapse", "--k", "10", "--d", "2", "--p", "0.05",
                     "--runs", "2", "--max-steps", "20000"])
        out = capsys.readouterr().out
        assert code == 0
        assert "mean collapse steps" in out

    def test_demo_small(self, capsys):
        code = main(["demo", "--peers", "3", "--k", "3", "--d", "2",
                     "--g", "6", "--payload", "32", "--generations", "1",
                     "--seed", "2", "--deadline", "30"])
        out = capsys.readouterr().out
        assert code == 0
        assert "converged: True" in out
        assert "corrupt decodes: 0" in out

    def test_scenario_small(self, capsys):
        code = main(["scenario", "file_download", "--seed", "1",
                     "--population", "10", "--max-slots", "600"])
        out = capsys.readouterr().out
        assert code == 0
        assert "completion" in out
        assert "corrupt decodes: 0" in out

    def test_soak_smoke(self, capsys, tmp_path):
        trace_path = tmp_path / "soak_trace.json"
        code = main(["soak", "--peers", "48", "--hours", "0.05",
                     "--epoch", "30", "--trace", "steady", "--seed", "0",
                     "--trace-out", str(trace_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "soak steady n=48" in out
        assert "epochs=6/6" in out
        assert trace_path.exists()

    def test_soak_smoke_preset_shrinks_horizon(self):
        args = build_parser().parse_args(["soak", "--smoke"])
        assert args.smoke and args.peers == 1000 and args.hours == 2.0
