"""Unit tests for §5 heterogeneous bandwidth classes."""

import pytest

from repro.core import (
    DEFAULT_CLASSES,
    BandwidthClass,
    OverlayNetwork,
    class_connectivity_report,
    join_population,
)


class TestBandwidthClass:
    def test_valid(self):
        cls = BandwidthClass("t1", 8)
        assert cls.degree == 8

    def test_invalid_degree(self):
        with pytest.raises(ValueError):
            BandwidthClass("bad", 0)

    def test_defaults_exist(self):
        names = {cls.name for cls in DEFAULT_CLASSES}
        assert {"dsl", "cable", "t1"} <= names


class TestJoinPopulation:
    def test_mixed_degrees(self, rng):
        net = OverlayNetwork(k=24, d=4, seed=1)
        membership = join_population(
            net, DEFAULT_CLASSES, weights=[1, 1, 1], count=60, rng=rng
        )
        assert len(membership) == 60
        degrees = {net.matrix.row(n).degree for n in membership}
        assert degrees == {2, 4, 8}
        net.matrix.check_invariants()

    def test_weights_respected(self, rng):
        net = OverlayNetwork(k=24, d=4, seed=2)
        membership = join_population(
            net, DEFAULT_CLASSES, weights=[1, 0, 0], count=30, rng=rng
        )
        assert all(cls.name == "dsl" for cls in membership.values())

    def test_validation(self, rng):
        net = OverlayNetwork(k=24, d=4, seed=3)
        with pytest.raises(ValueError):
            join_population(net, DEFAULT_CLASSES, weights=[1, 1], count=5, rng=rng)
        with pytest.raises(ValueError):
            join_population(net, DEFAULT_CLASSES, weights=[0, 0, 0], count=5, rng=rng)


class TestConnectivityReport:
    def test_report_structure(self, rng):
        net = OverlayNetwork(k=24, d=4, seed=4)
        membership = join_population(
            net, DEFAULT_CLASSES, weights=[2, 2, 1], count=50, rng=rng
        )
        report = class_connectivity_report(net, membership)
        assert set(report) <= {"dsl", "cable", "t1"}
        total = sum(row["nodes"] for row in report.values())
        assert total == 50

    def test_no_failures_means_full_fraction(self, rng):
        """Without failures every class gets its full nominal bandwidth."""
        net = OverlayNetwork(k=24, d=4, seed=5)
        membership = join_population(
            net, DEFAULT_CLASSES, weights=[1, 1, 1], count=40, rng=rng
        )
        report = class_connectivity_report(net, membership)
        for row in report.values():
            assert row["mean_fraction"] == pytest.approx(1.0)

    def test_higher_class_gets_more_bandwidth(self, rng):
        """§5: a T1 user receives more units than a DSL user."""
        net = OverlayNetwork(k=24, d=4, seed=6)
        membership = join_population(
            net, DEFAULT_CLASSES, weights=[1, 1, 1], count=60, rng=rng
        )
        report = class_connectivity_report(net, membership)
        assert report["t1"]["mean_connectivity"] > report["dsl"]["mean_connectivity"]
