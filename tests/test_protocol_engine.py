"""Property-based tests for the sans-IO protocol engines.

Two contracts the drivers rely on:

* the :class:`~repro.protocol.ServerEngine` never emits an effect
  aimed at a peer that already departed (left or was spliced out) —
  drivers would otherwise write to dead connections or, worse, revive
  stale topology;
* engines are deterministic state machines: replaying a recorded event
  trace into a fresh, identically-seeded engine reproduces the exact
  effect trace (what makes the cross-driver conformance goldens and
  crash-consistent debugging possible).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CoordinationServer
from repro.core.matrix import SERVER
from repro.protocol import (
    ComplaintMsg,
    ConnectionLost,
    CongestionDrop,
    CongestionRestore,
    EngineLog,
    JoinGrant,
    JoinRequest,
    KeepAlive,
    KeepAliveTick,
    LeaveRequest,
    MessageReceived,
    PeerEngine,
    ProbeAck,
    Send,
    ServerEngine,
    SetParent,
    SilenceCheck,
    ThreadRemoved,
    TimerFired,
    UpstreamDown,
    replay,
)

server_ops = st.lists(
    st.tuples(
        st.sampled_from([
            "join", "leave", "complaint", "ack", "timeout",
            "lost", "drop", "restore",
        ]),
        st.integers(min_value=0, max_value=2**31 - 1),
    ),
    min_size=1,
    max_size=60,
)


def drive_server(engine: ServerEngine, ops, *, check=None) -> list:
    """Feed a random op sequence, resolving indices against live state.

    Returns the list of events actually handled (for replay tests).
    ``check`` is called as ``check(event, effects)`` after every step.
    """
    admitted: list[int] = []
    pending_timers: list[tuple] = []
    events = []

    def step(event):
        effects = engine.handle(event)
        events.append(event)
        for effect in effects:
            if hasattr(effect, "key"):  # StartTimer
                pending_timers.append(effect.key)
        if check is not None:
            check(event, effects)

    for op, raw in ops:
        if op == "join":
            before = set(engine.core.registry)
            step(MessageReceived(JoinRequest(reply_to=0)))
            admitted.extend(sorted(set(engine.core.registry) - before))
        elif op == "timeout":
            if not pending_timers:
                continue
            key = pending_timers.pop(raw % len(pending_timers))
            step(TimerFired(key))
        elif admitted:
            node = admitted[raw % len(admitted)]
            if op == "leave":
                step(MessageReceived(LeaveRequest(node_id=node), sender=node))
            elif op == "complaint":
                step(MessageReceived(
                    ComplaintMsg(reporter=node, column=0, suspect=node)))
            elif op == "ack":
                nonce = engine.pending_probes.get(node, 0)
                step(MessageReceived(ProbeAck(node_id=node, nonce=nonce)))
            elif op == "lost":
                step(ConnectionLost(node))
            elif op == "drop":
                step(MessageReceived(CongestionDrop(node_id=node)))
            elif op == "restore":
                step(MessageReceived(CongestionRestore(node_id=node)))
    return events


class TestServerEngineProperties:
    @settings(max_examples=60, deadline=None)
    @given(ops=server_ops, seed=st.integers(0, 2**31 - 1),
           mode=st.sampled_from(["append", "uniform"]))
    def test_never_targets_departed_peer(self, ops, seed, mode):
        engine = ServerEngine(CoordinationServer(
            3, 2, np.random.default_rng(seed), mode))

        def check(event, effects):
            for effect in effects:
                if isinstance(effect, Send) and effect.to != SERVER:
                    assert effect.to not in engine.departed, (
                        f"{event} made the engine send "
                        f"{effect.message} to departed peer {effect.to}"
                    )

        drive_server(engine, ops, check=check)

    @settings(max_examples=60, deadline=None)
    @given(ops=server_ops, seed=st.integers(0, 2**31 - 1),
           mode=st.sampled_from(["append", "uniform"]))
    def test_replay_reproduces_effect_trace(self, ops, seed, mode):
        recorded = ServerEngine(CoordinationServer(
            3, 2, np.random.default_rng(seed), mode))
        recorded.log = EngineLog()
        events = drive_server(recorded, ops)

        fresh = ServerEngine(CoordinationServer(
            3, 2, np.random.default_rng(seed), mode))
        assert replay(fresh, events) == recorded.log.effect_trace()
        assert fresh.departed == recorded.departed
        assert fresh.pending_probes == recorded.pending_probes


peer_events = st.lists(
    st.one_of(
        st.builds(
            lambda assignments: MessageReceived(JoinGrant(
                node_id=7, assignments=tuple(assignments))),
            st.lists(st.tuples(st.integers(0, 3),
                               st.integers(-1, 5)), max_size=3),
        ),
        st.builds(
            lambda column, parent: MessageReceived(
                SetParent(column=column, parent=parent)),
            st.integers(0, 3), st.integers(-1, 5),
        ),
        st.builds(
            lambda column: MessageReceived(ThreadRemoved(column=column)),
            st.integers(0, 3),
        ),
        st.builds(
            lambda column, sender, now: MessageReceived(
                KeepAlive(column=column, sender=sender), now=now),
            st.integers(0, 3), st.integers(0, 5),
            st.floats(0, 100, allow_nan=False),
        ),
        st.builds(KeepAliveTick, now=st.floats(0, 100, allow_nan=False)),
        st.builds(SilenceCheck, now=st.floats(0, 100, allow_nan=False)),
        st.builds(
            UpstreamDown,
            column=st.integers(0, 3),
            parent=st.integers(-1, 5),
            saw_traffic=st.booleans(),
        ),
    ),
    min_size=1,
    max_size=40,
)


class TestPeerEngineProperties:
    @settings(max_examples=60, deadline=None)
    @given(events=peer_events)
    def test_replay_reproduces_effect_trace(self, events):
        recorded = PeerEngine(7, silence_timeout=1.0)
        recorded.log = EngineLog()
        for event in events:
            recorded.handle(event)

        fresh = PeerEngine(7, silence_timeout=1.0)
        assert replay(fresh, events) == recorded.log.effect_trace()
        assert fresh.parents == recorded.parents
        assert fresh.children == recorded.children
        assert fresh.complained == recorded.complained
