"""Fuzz tests: hostile inputs must raise cleanly, never corrupt state.

A deployed peer parses frames from untrusted senders and feeds packets
into its decoder; none of that may crash the process or poison internal
state with exceptions other than the documented ones.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding import CodedPacket, Decoder, GenerationParams
from repro.coding.wire import WireFormatError, decode_packet, encode_packet
from repro.security import HomomorphicHasher, generate_params
from repro.security.codec import PrimePacket


class TestWireFuzz:
    @settings(max_examples=200)
    @given(frame=st.binary(min_size=0, max_size=200))
    def test_random_bytes_never_crash(self, frame):
        """Arbitrary bytes either parse or raise WireFormatError."""
        try:
            packet = decode_packet(frame)
        except WireFormatError:
            return
        # if it parsed, it must re-encode to the same bytes at one of the
        # two accepted wire versions
        assert frame in (encode_packet(packet, version=1), encode_packet(packet))

    @settings(max_examples=100)
    @given(
        flip=st.integers(min_value=0, max_value=10**6),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_bitflipped_frames_parse_or_raise(self, flip, seed):
        """Single corrupted bytes in a valid frame never crash the parser."""
        rng = np.random.default_rng(seed)
        packet = CodedPacket(
            generation=int(rng.integers(0, 100)),
            coefficients=rng.integers(0, 256, size=6, dtype=np.uint8),
            payload=rng.integers(0, 256, size=20, dtype=np.uint8),
        )
        frame = bytearray(encode_packet(packet))
        frame[flip % len(frame)] ^= 1 + (flip % 255)
        try:
            decode_packet(bytes(frame))
        except WireFormatError:
            pass


class TestDecoderFuzz:
    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        count=st.integers(min_value=1, max_value=40),
    )
    def test_arbitrary_packets_never_corrupt_rank(self, seed, count):
        """Any stream of well-formed packets keeps 0 <= rank <= g and
        never makes push() raise."""
        rng = np.random.default_rng(seed)
        params = GenerationParams(generation_size=5, payload_size=9)
        decoder = Decoder(params, 2)
        for _ in range(count):
            packet = CodedPacket(
                generation=int(rng.integers(0, 2)),
                coefficients=rng.integers(0, 256, size=5, dtype=np.uint8),
                payload=rng.integers(0, 256, size=9, dtype=np.uint8),
            )
            decoder.push(packet)
            assert 0 <= decoder.total_rank <= decoder.total_dof

    def test_mismatched_sizes_rejected(self):
        params = GenerationParams(generation_size=4, payload_size=8)
        decoder = Decoder(params, 1)
        bad = CodedPacket(
            generation=0,
            coefficients=np.ones(5, dtype=np.uint8),  # wrong g
            payload=np.zeros(8, dtype=np.uint8),
        )
        with pytest.raises(ValueError):
            decoder.push(bad)


class TestHashFuzz:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_random_packets_never_verify(self, seed):
        """Forging a verifying packet by chance must not happen (the
        demo group is small but still 2^31-sized)."""
        rng = np.random.default_rng(seed)
        hasher = HomomorphicHasher(generate_params(4, seed=1))
        source = rng.integers(0, 2**31 - 1, size=(3, 4))
        hashes = hasher.hash_generation(source)
        packet = PrimePacket(
            coefficients=rng.integers(0, 2**31 - 1, size=3),
            payload=rng.integers(0, 2**31 - 1, size=4),
        )
        assert not hasher.verify(packet, hashes)
