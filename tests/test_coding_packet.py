"""Unit tests for coded packets and combination."""

import numpy as np
import pytest

from repro.coding import CodedPacket, SourceBlock, combine
from repro.gf.tables import MUL


def make_packet(coeffs, payload, generation=0):
    return CodedPacket(
        generation=generation,
        coefficients=np.array(coeffs, dtype=np.uint8),
        payload=np.array(payload, dtype=np.uint8),
    )


class TestCodedPacket:
    def test_sizes(self):
        packet = make_packet([1, 0, 0], [9, 9])
        assert packet.generation_size == 3
        assert packet.payload_size == 2

    def test_header_overhead(self):
        packet = make_packet([1, 0], [0] * 8)
        assert packet.header_overhead == pytest.approx(2 / 10)

    def test_is_zero(self):
        assert make_packet([0, 0], [1, 2]).is_zero()
        assert not make_packet([0, 1], [1, 2]).is_zero()

    def test_is_systematic(self):
        assert make_packet([0, 1, 0], [5]).is_systematic()
        assert not make_packet([0, 2, 0], [5]).is_systematic()
        assert not make_packet([1, 1, 0], [5]).is_systematic()

    def test_copy_is_deep(self):
        packet = make_packet([1, 2], [3, 4])
        clone = packet.copy()
        clone.coefficients[0] = 99
        clone.payload[0] = 99
        assert packet.coefficients[0] == 1
        assert packet.payload[0] == 3

    def test_wire_size(self):
        packet = make_packet([1, 2, 3], [0] * 10)
        assert packet.wire_size() == 3 + 10 + 8


class TestSourceBlock:
    def test_dimensions(self):
        block = SourceBlock(generation=0, data=np.zeros((4, 8), dtype=np.uint8))
        assert block.generation_size == 4
        assert block.payload_size == 8

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            SourceBlock(generation=0, data=np.zeros(8, dtype=np.uint8))

    def test_source_packet_is_systematic(self):
        data = np.arange(12, dtype=np.uint8).reshape(3, 4)
        block = SourceBlock(generation=2, data=data)
        packet = block.source_packet(1)
        assert packet.generation == 2
        assert packet.is_systematic()
        assert packet.coefficients[1] == 1
        assert np.array_equal(packet.payload, data[1])


class TestCombine:
    def test_single_packet_scaled(self):
        packet = make_packet([1, 2], [3, 4])
        out = combine([packet], np.array([5], dtype=np.uint8))
        assert np.array_equal(out.coefficients, MUL[5, packet.coefficients])
        assert np.array_equal(out.payload, MUL[5, packet.payload])

    def test_xor_of_two(self):
        a = make_packet([1, 0], [10, 0])
        b = make_packet([0, 1], [0, 20])
        out = combine([a, b], np.array([1, 1], dtype=np.uint8))
        assert np.array_equal(out.coefficients, [1, 1])
        assert np.array_equal(out.payload, [10, 20])

    def test_linearity_consistency(self, rng):
        """Combining source packets must equal coding the source directly."""
        data = rng.integers(0, 256, size=(3, 16), dtype=np.uint8)
        block = SourceBlock(generation=0, data=data)
        packets = [block.source_packet(i) for i in range(3)]
        scalars = rng.integers(0, 256, size=3, dtype=np.uint8)
        out = combine(packets, scalars)
        expected = np.zeros(16, dtype=np.uint8)
        for i, s in enumerate(scalars):
            expected ^= MUL[int(s), data[i]]
        assert np.array_equal(out.payload, expected)
        assert np.array_equal(out.coefficients, scalars)

    def test_generation_mismatch_raises(self):
        a = make_packet([1], [1], generation=0)
        b = make_packet([1], [1], generation=1)
        with pytest.raises(ValueError):
            combine([a, b], np.array([1, 1], dtype=np.uint8))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            combine([], np.array([], dtype=np.uint8))

    def test_scalar_count_mismatch_raises(self):
        packet = make_packet([1], [1])
        with pytest.raises(ValueError):
            combine([packet], np.array([1, 2], dtype=np.uint8))

    def test_hop_count_increments(self):
        a = make_packet([1, 0], [1])
        a.hop_count = 3
        b = make_packet([0, 1], [1])
        b.hop_count = 5
        out = combine([a, b], np.array([1, 1], dtype=np.uint8))
        assert out.hop_count == 6
