"""Unit tests for expansion, delay and statistics helpers."""

import pytest

from repro.analysis import (
    ancestor_counts,
    chi_square_same_distribution,
    delay_profile,
    ks_same_distribution,
    mean_ci,
    mean_grandparent_count,
    pipeline_depth_profile,
    proportion_ci,
    vertex_expansion_sample,
)
from repro.core import OverlayNetwork


class TestExpansion:
    def test_ancestor_counts_shape(self, small_net):
        graph = small_net.graph()
        bottom = small_net.matrix.node_ids[-1]
        counts = ancestor_counts(graph, bottom, 3)
        assert len(counts) == 3
        assert counts[0] <= small_net.d  # distinct parents

    def test_ancestor_counts_top_node(self, small_net):
        graph = small_net.graph()
        top = small_net.matrix.node_ids[0]
        counts = ancestor_counts(graph, top, 2)
        assert counts == [0, 0]  # only the server above

    def test_invalid_depth(self, small_net):
        with pytest.raises(ValueError):
            ancestor_counts(small_net.graph(), 0, 0)

    def test_grandparents_grow_with_d(self):
        """§1 intuition: d parents lead to roughly d^2 grandparents."""
        means = {}
        for d in (2, 4):
            net = OverlayNetwork(k=8 * d, d=d, seed=42)
            net.grow(500)
            graph = net.graph()
            deep = net.matrix.node_ids[-100:]
            means[d] = mean_grandparent_count(graph, deep)
        assert means[4] > 2.0 * means[2]

    def test_vertex_expansion_positive(self, small_net, rng):
        ratio = vertex_expansion_sample(small_net.graph(), rng, set_size=5, samples=20)
        assert ratio > 0.0

    def test_vertex_expansion_set_too_big(self, tiny_net, rng):
        with pytest.raises(ValueError):
            vertex_expansion_sample(tiny_net.graph(), rng, set_size=100)


class TestDelay:
    def test_profile_fields(self, small_net):
        profile = delay_profile(small_net.graph())
        assert profile.population == 40
        assert profile.unreachable == 0
        assert 1 <= profile.mean_depth <= profile.max_depth
        assert profile.p95_depth <= profile.max_depth

    def test_pipeline_at_least_shortest(self, small_net):
        graph = small_net.graph()
        shortest = delay_profile(graph)
        longest = pipeline_depth_profile(graph)
        assert longest.max_depth >= shortest.max_depth
        assert longest.mean_depth >= shortest.mean_depth

    def test_unreachable_counted(self, small_net):
        # fail the entire top half: some bottom nodes get cut off entirely
        for node in small_net.matrix.node_ids[:20]:
            small_net.fail(node)
        profile = delay_profile(small_net.graph())
        assert profile.population == 20
        assert profile.unreachable >= 0

    def test_empty_graph(self):
        net = OverlayNetwork(k=6, d=2, seed=0)
        profile = delay_profile(net.graph())
        assert profile.population == 0
        assert profile.mean_depth == 0.0


class TestStats:
    def test_mean_ci_contains_truth(self, rng):
        samples = rng.normal(5.0, 1.0, size=400)
        estimate = mean_ci(samples)
        assert estimate.low < 5.0 < estimate.high
        assert estimate.n == 400

    def test_mean_ci_single_sample(self):
        estimate = mean_ci([3.0])
        assert estimate.mean == 3.0
        assert estimate.half_width == float("inf")

    def test_mean_ci_empty_raises(self):
        with pytest.raises(ValueError):
            mean_ci([])

    def test_proportion_ci_bounds(self):
        estimate = proportion_ci(30, 100)
        assert 0.2 < estimate.low < 0.3 < estimate.high < 0.42

    def test_proportion_ci_extremes(self):
        zero = proportion_ci(0, 50)
        assert zero.low >= 0.0 or zero.mean - zero.half_width < 0.05
        with pytest.raises(ValueError):
            proportion_ci(1, 0)

    def test_chi_square_same_distribution_accepts_identical(self, rng):
        counts = rng.integers(50, 100, size=6)
        _, p_value = chi_square_same_distribution(counts, counts)
        assert p_value > 0.9

    def test_chi_square_detects_difference(self):
        a = [100, 10, 10, 10]
        b = [10, 10, 10, 100]
        _, p_value = chi_square_same_distribution(a, b)
        assert p_value < 0.001

    def test_chi_square_validation(self):
        with pytest.raises(ValueError):
            chi_square_same_distribution([1, 2], [1, 2, 3])
        with pytest.raises(ValueError):
            chi_square_same_distribution([0, 0], [0, 0])

    def test_ks_same_distribution(self, rng):
        a = rng.normal(0, 1, size=300)
        b = rng.normal(0, 1, size=300)
        c = rng.normal(2, 1, size=300)
        _, p_same = ks_same_distribution(a, b)
        _, p_diff = ks_same_distribution(a, c)
        assert p_same > 0.01
        assert p_diff < 0.001
