"""Unit tests for failure models."""

import numpy as np
import pytest

from repro.core import OverlayNetwork
from repro.failures import (
    CohortBatchFailures,
    IIDFailures,
    RandomBatchFailures,
    TopRowsFailures,
    apply_failures,
)


@pytest.fixture
def net():
    net = OverlayNetwork(k=16, d=2, seed=13)
    net.grow(100)
    return net


class TestIIDFailures:
    def test_zero_p_nobody_fails(self, net, rng):
        assert IIDFailures(0.0).select(net, rng) == []

    def test_one_p_everyone_fails(self, net, rng):
        assert len(IIDFailures(1.0).select(net, rng)) == 100

    def test_rate_statistics(self, net, rng):
        counts = [len(IIDFailures(0.2).select(net, rng)) for _ in range(200)]
        assert 15 < np.mean(counts) < 25

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            IIDFailures(1.5)

    def test_selects_only_working(self, net, rng):
        net.fail(0)
        victims = IIDFailures(1.0).select(net, rng)
        assert 0 not in victims


class TestBatchModels:
    def test_random_batch_size(self, net, rng):
        victims = RandomBatchFailures(0.25).select(net, rng)
        assert len(victims) == 25
        assert len(set(victims)) == 25

    def test_random_batch_zero(self, net, rng):
        assert RandomBatchFailures(0.0).select(net, rng) == []

    def test_cohort_is_contiguous_in_join_order(self, net, rng):
        victims = CohortBatchFailures(0.2).select(net, rng)
        assert len(victims) == 20
        ordered = sorted(victims)
        assert ordered == list(range(ordered[0], ordered[0] + 20))

    def test_cohort_full_fraction(self, net, rng):
        victims = CohortBatchFailures(1.0).select(net, rng)
        assert len(victims) == 100

    def test_top_rows_hits_earliest(self, net, rng):
        victims = TopRowsFailures(0.1).select(net, rng)
        assert victims == net.matrix.node_ids[:10]

    def test_invalid_fractions(self):
        for model in (RandomBatchFailures, CohortBatchFailures, TopRowsFailures):
            with pytest.raises(ValueError):
                model(1.2)


class TestApplyFailures:
    def test_apply_marks_network(self, net, rng):
        victims = apply_failures(net, RandomBatchFailures(0.1), rng)
        assert set(victims) == set(net.failed)
        assert len(net.working_nodes) == 90

    def test_apply_iid_then_repair(self, net, rng):
        apply_failures(net, IIDFailures(0.3), rng)
        net.repair_all()
        assert net.failed == frozenset()
        net.matrix.check_invariants()
