"""Unit tests for topology derivation from the matrix."""

import pytest

from repro.core import SERVER, ThreadMatrix, build_overlay_graph, hanging_thread_sources
from repro.core.topology import OverlayGraph


@pytest.fixture
def matrix(rng):
    m = ThreadMatrix(k=5)
    m.join(0, 2, rng, columns=[0, 1])
    m.join(1, 2, rng, columns=[1, 2])
    m.join(2, 2, rng, columns=[0, 2])
    return m


class TestBuildGraph:
    def test_nodes_and_edges(self, matrix):
        graph = build_overlay_graph(matrix)
        assert graph.nodes == {0, 1, 2}
        assert graph.succ[SERVER] == {0: 2, 1: 1}  # cols 0,1 -> node0; col 2 -> node1
        assert graph.succ[0] == {1: 1, 2: 1}
        assert graph.succ[1] == {2: 1}

    def test_in_degree_equals_d(self, matrix):
        graph = build_overlay_graph(matrix)
        for node in graph.nodes:
            assert graph.in_degree(node) == 2

    def test_failed_node_removed(self, matrix):
        graph = build_overlay_graph(matrix, failed={1})
        assert 1 not in graph.nodes
        assert 1 not in graph.succ.get(0, {})
        # node 2's thread on column 2 is dead: in-degree drops to 1
        assert graph.in_degree(2) == 1

    def test_failed_parent_and_child_edges_gone(self, matrix):
        graph = build_overlay_graph(matrix, failed={0})
        assert all(0 not in targets for targets in graph.succ.values())
        assert 0 not in graph.succ

    def test_edge_count(self, matrix):
        graph = build_overlay_graph(matrix)
        assert graph.edge_count() == 6


class TestGraphAlgorithms:
    def test_depths(self, matrix):
        graph = build_overlay_graph(matrix)
        depths = graph.depths_from_server()
        assert depths == {0: 1, 1: 1, 2: 2}

    def test_longest_depths(self, matrix):
        graph = build_overlay_graph(matrix)
        longest = graph.longest_depths_from_server()
        assert longest == {0: 1, 1: 2, 2: 3}

    def test_acyclic(self, matrix):
        assert build_overlay_graph(matrix).is_acyclic()

    def test_cycle_detected(self):
        graph = OverlayGraph()
        graph.add_node(1)
        graph.add_node(2)
        graph.add_edge(SERVER, 1)
        graph.add_edge(1, 2)
        graph.add_edge(2, 1)
        assert not graph.is_acyclic()
        with pytest.raises(ValueError):
            graph.topological_order()

    def test_topological_order_server_first(self, matrix):
        order = build_overlay_graph(matrix).topological_order()
        assert order[0] == SERVER

    def test_parents_children(self, matrix):
        graph = build_overlay_graph(matrix)
        assert set(graph.parents(2)) == {0, 1}
        assert set(graph.children(0)) == {1, 2}

    def test_to_networkx(self, matrix):
        nx_graph = build_overlay_graph(matrix).to_networkx()
        assert nx_graph.number_of_nodes() == 4  # server + 3
        assert nx_graph.number_of_edges() == 6


class TestHangingSources:
    def test_all_live(self, matrix):
        owners = hanging_thread_sources(matrix)
        assert owners == {0: 2, 1: 1, 2: 2, 3: SERVER, 4: SERVER}

    def test_failed_owner_omitted(self, matrix):
        owners = hanging_thread_sources(matrix, failed={2})
        assert 0 not in owners
        assert 2 not in owners
        assert owners[1] == 1

    def test_unreachable_nodes_have_no_depth(self, matrix):
        graph = build_overlay_graph(matrix, failed={0, 1})
        depths = graph.depths_from_server()
        assert 2 not in depths  # node 2 fully cut off
