"""Cross-incarnation conformance: one data-plane core, identical traces.

The same delivery sequence is fed to a leaf relay on two entirely
different drivers:

* the live transport on the in-memory virtual network — the leaf's
  :class:`~repro.dataplane.RelayEngine` gets an
  :class:`~repro.protocol.EngineLog` the moment it is constructed, so
  the trace covers everything the peer ever ingests: the (deterministic)
  server-stream packets that land during harness bring-up, then a
  scripted injection on the server's outbound data pump (sixteen
  round-robin source packets with a mid-script duplicate and a trailing
  post-completion duplicate), all travelling through framing, CRC, and
  :meth:`PeerNode._on_packet`;
* the slotted simulator's pull-mode driver
  (:meth:`repro.sim.behaviors.RlncBehavior.deliver`), replaying the
  exact same packets, bring-up prefix included.

Both must produce the *same flattened effect trace* — the
:class:`~repro.dataplane.Ingested` gate verdicts, post-ingest ranks,
and the single :class:`~repro.dataplane.MarkComplete` — because the
receive gate is pure linear algebra over the packet bytes, whatever
transport carried them.  The trace is also pinned against a golden
file, the data-plane sibling of ``protocol_effects.json``.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.coding import GenerationParams, SourceEncoder
from repro.dataplane import EngineLog, Ingested, MarkComplete, PacketArrived
from repro.sim import RngStreams
from repro.sim.behaviors import RlncBehavior

GOLDENS = Path(__file__).parent / "goldens"

#: Shared geometry: 2 generations of 4 packets -> 8 degrees of freedom.
PARAMS = GenerationParams(generation_size=4, payload_size=16)
GENERATIONS = 2
NEEDED = GENERATIONS * PARAMS.generation_size
CONTENT_SIZE = GENERATIONS * PARAMS.generation_size * PARAMS.payload_size

#: The leaf's node id in the simulator incarnation (arbitrary).
LEAF = 5


def delivery_script():
    """The scripted injection, identical for both incarnations.

    A dedicated source encoder (its own seed, distinct from either
    incarnation's content) emits each generation to full rank;
    ``script[3]`` re-delivers an absorbed packet mid-run and the final
    packet re-arrives after completion — pinning the gate's verdict on
    both flavours of redundancy.
    """
    rng = np.random.default_rng(1234)
    content = bytes(rng.integers(0, 256, size=CONTENT_SIZE, dtype=np.uint8))
    encoder = SourceEncoder(content, PARAMS, rng)
    packets = [
        encoder.emit(generation)
        for generation in range(GENERATIONS)
        for _ in range(PARAMS.generation_size)
    ]
    return packets[:3] + [packets[0]] + packets[3:] + [packets[1]]


def run_virtualnet_script(script):
    """Run bring-up plus the scripted injection on the live transport.

    Returns the packets the leaf ingested during harness bring-up (the
    server stream's deterministic emissions while ``_drive`` fast-
    forwards the virtual clock through the join handshake) and the
    leaf's full effect trace.  The engine constructor is wrapped so the
    log is attached before the first arrival can slip past it.
    """
    import asyncio

    import repro.net.peer as peer_module
    from repro.net.testing.scenarios import ChaosConfig, ChaosHarness

    real_engine = peer_module.RelayEngine

    def logging_engine(*args, **kwargs):
        engine = real_engine(*args, **kwargs)
        engine.log = EngineLog()
        return engine

    async def go():
        harness = ChaosHarness(ChaosConfig(
            peers=1, k=2, d=2,
            generation_size=PARAMS.generation_size,
            payload_size=PARAMS.payload_size,
            generations=GENERATIONS, seed=0,
            send_interval=10_000.0,
            keepalive_interval=10_000.0,
            silence_timeout=100_000.0,
            probe_timeout=10_000.0,
        ))
        try:
            await harness.start()
            await harness.settle(0.05)
            peer = harness.peers[0]
            log = peer.dataplane.log
            prefix = [event.packet for event in log.events]
            assert all(isinstance(e, PacketArrived) for e in log.events)
            sender = harness.server._column_senders[0]
            for packet in script:
                assert sender.enqueue(packet), "injection queue overflow"
            expected = len(prefix) + len(script)
            for _ in range(500):
                if peer.dataplane.received >= expected:
                    break
                await harness.clock.advance(0.01)
            assert peer.dataplane.received == expected, (
                "virtual net dropped scripted packets")
            # Snapshot before teardown noise.
            return prefix, list(log.effect_reprs())
        finally:
            await harness.teardown()

    peer_module.RelayEngine = logging_engine
    try:
        return asyncio.run(go())
    finally:
        peer_module.RelayEngine = real_engine


def run_simulator_script(packets):
    """Deliver the same packets through the slotted pull-mode driver."""
    rng = np.random.default_rng(77)
    content = bytes(rng.integers(0, 256, size=CONTENT_SIZE, dtype=np.uint8))
    behavior = RlncBehavior(content, PARAMS, RngStreams(0))
    log = EngineLog()
    behavior.engine_of(LEAF).log = log
    for slot, packet in enumerate(packets):
        behavior.deliver(LEAF, packet, slot)
    return list(log.effect_reprs())


@pytest.fixture(scope="module")
def traces():
    script = delivery_script()
    prefix, net_trace = run_virtualnet_script(script)
    sim_trace = run_simulator_script(prefix + script)
    return sim_trace, net_trace, prefix


class TestCrossIncarnationConformance:
    def test_effect_traces_identical(self, traces):
        sim_trace, net_trace, _ = traces
        assert sim_trace == net_trace

    def test_trace_matches_golden(self, traces):
        sim_trace, _, _ = traces
        golden = json.loads(
            (GOLDENS / "dataplane_effects.json").read_text())
        assert sim_trace == golden["leaf_effects"]

    def test_gate_verdicts(self, traces):
        """Bring-up plus script carry exactly ``NEEDED`` innovative
        packets; every redundant arrival bounces off the gate and the
        decode is marked exactly once, before the trailing duplicate."""
        sim_trace, _, _ = traces
        assert sum(
            "innovative=True" in line for line in sim_trace) == NEEDED
        completions = [
            line for line in sim_trace if line.startswith("MarkComplete")]
        assert completions == [repr(MarkComplete(NEEDED))]
        assert "innovative=False" in sim_trace[-1]

    def test_ranks_monotone_to_full(self, traces):
        sim_trace, _, _ = traces
        ranks = [
            int(line.rsplit("rank=", 1)[1].rstrip(")"))
            for line in sim_trace if line.startswith("Ingested")
        ]
        assert ranks == sorted(ranks)
        assert ranks[-1] == NEEDED

    def test_effect_vocabulary_is_payload_free(self, traces):
        """Only gate verdicts and the completion cross incarnations —
        a leaf with no children must never be asked to emit."""
        sim_trace, _, prefix = traces
        assert all(
            line.startswith(("Ingested", "MarkComplete"))
            for line in sim_trace
        )
        assert sim_trace[0] == repr(
            Ingested(prefix[0].generation, True, 1))
