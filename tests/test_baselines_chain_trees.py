"""Unit tests for the chain and striped-tree baselines."""

import math

import numpy as np
import pytest

from repro.baselines import ChainOverlay, StripedTrees
from repro.core import SERVER


class TestChainOverlay:
    def test_structure(self):
        chain = ChainOverlay(k=4, population=10)
        assert chain.chain_of(0) == 0
        assert chain.chain_of(5) == 1
        assert chain.depth_of(0) == 1
        assert chain.depth_of(9) == 3

    def test_graph_is_k_paths(self):
        chain = ChainOverlay(k=3, population=9)
        graph = chain.to_overlay_graph()
        assert len(graph.nodes) == 9
        assert graph.succ[SERVER] == {0: 1, 1: 1, 2: 1}
        for node in graph.nodes:
            assert graph.in_degree(node) == 1
            assert graph.out_degree(node) <= 1

    def test_delivery_probability_decays_with_depth(self):
        chain = ChainOverlay(k=2, population=100)
        assert chain.delivery_probability(0, 0.1) == 1.0
        assert chain.delivery_probability(98, 0.1) < 0.01

    def test_mean_delivery_closed_form(self):
        chain = ChainOverlay(k=1, population=3)
        p = 0.5
        expected = (1 + 0.5 + 0.25) / 3
        assert chain.mean_delivery(p) == pytest.approx(expected)

    def test_simulation_matches_expectation(self, rng):
        chain = ChainOverlay(k=10, population=500)
        p = 0.02
        trials = [chain.simulate_delivery(p, rng) for _ in range(60)]
        assert np.mean(trials) == pytest.approx(chain.mean_delivery(p), abs=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            ChainOverlay(k=0, population=5)


class TestStripedTrees:
    def test_depth_logarithmic(self):
        trees = StripedTrees(d=4, population=1000)
        assert trees.max_depth() <= 3 * math.ceil(math.log(1000, 4)) + 2

    def test_parents_precede_or_are_interior(self):
        trees = StripedTrees(d=3, population=50)
        for stripe in range(3):
            for node in range(50):
                parent = trees.parent_in_tree(node, stripe)
                if parent != SERVER:
                    assert parent % 3 == stripe  # only interiors forward

    def test_interior_out_degree_bounded(self):
        trees = StripedTrees(d=3, population=60)
        for stripe in range(3):
            for node in range(60):
                children = trees.children_in_tree(node, stripe)
                if node % 3 == stripe:
                    assert len(children) <= 3
                else:
                    assert children == []

    def test_unknown_node_raises(self):
        trees = StripedTrees(d=2, population=4)
        with pytest.raises(KeyError):
            trees.parent_in_tree(99, 0)

    def test_no_failures_full_delivery(self, rng):
        trees = StripedTrees(d=3, population=100)
        mean_fraction, decode = trees.simulate_delivery(0.0, rng)
        assert mean_fraction == 1.0
        assert decode == 1.0

    def test_erasure_protection_helps(self, rng):
        """Requiring m < d stripes must decode at least as often."""
        strict = StripedTrees(d=4, population=300, required_stripes=4)
        protected = StripedTrees(d=4, population=300, required_stripes=3)
        _, strict_decode = strict.simulate_delivery(0.05, np.random.default_rng(3))
        _, protected_decode = protected.simulate_delivery(0.05, np.random.default_rng(3))
        assert protected_decode >= strict_decode

    def test_delivery_decreases_with_p(self, rng):
        trees = StripedTrees(d=3, population=200)
        low, _ = trees.simulate_delivery(0.01, np.random.default_rng(4))
        high, _ = trees.simulate_delivery(0.2, np.random.default_rng(4))
        assert high < low

    def test_stripe_probability_formula(self):
        trees = StripedTrees(d=2, population=20)
        for node in (0, 7, 19):
            for stripe in (0, 1):
                probability = trees.stripe_delivery_probability(node, stripe, 0.1)
                depth = trees.depth_in_tree(node, stripe)
                assert probability == pytest.approx(0.9 ** (depth - 1))

    def test_validation(self):
        with pytest.raises(ValueError):
            StripedTrees(d=0, population=5)
        with pytest.raises(ValueError):
            StripedTrees(d=3, population=5, required_stripes=4)
