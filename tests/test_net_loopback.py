"""End-to-end tests of the live transport over loopback sockets.

These spin up a real asyncio server plus peers on 127.0.0.1 (ephemeral
ports).  The harness waits on completion events (not polling sleeps),
so each run finishes as soon as the last peer decodes; deadlines are
generous for loaded CI machines.  The suite is marked ``slow`` — it is
the real-socket tier behind the in-memory chaos scenarios of
``test_net_chaos.py`` and is deselected from the default fast run
(select it with ``-m slow``).
"""

import pytest

from repro.net import LoopbackConfig, run_loopback_sync
from repro.sim.report import RunReport

pytestmark = pytest.mark.slow


def _small_config(**overrides):
    defaults = dict(
        peers=4, k=4, d=2, generation_size=6, payload_size=32,
        generations=2, seed=11, deadline=30.0,
    )
    defaults.update(overrides)
    return LoopbackConfig(**defaults)


class TestLoopbackBroadcast:
    def test_all_peers_decode_every_generation(self):
        result = run_loopback_sync(_small_config())
        report = result.report
        assert result.converged
        assert isinstance(report, RunReport)
        assert report.completion_fraction == 1.0
        assert all(n.decoded_ok for n in report.nodes)
        assert all(n.rank == n.needed for n in report.nodes)
        assert report.server_packets > 0
        assert report.slots > 0

    def test_report_shape_matches_simulators(self):
        """Existing report consumers must work on live runs unchanged."""
        report = run_loopback_sync(_small_config(seed=12)).report
        assert report.completion_percentile(95) >= report.completion_percentile(50)
        assert report.mean_completion_slot() > 0
        assert 0.0 < report.link_stats.delivery_ratio <= 1.0
        slots = report.completion_slots()
        assert len(slots) == 4 and all(s <= report.slots for s in slots)

    def test_uniform_insert_mode(self):
        """§5 random row insertion: mid-column splices during admission."""
        result = run_loopback_sync(
            _small_config(peers=5, k=5, seed=13, insert_mode="uniform")
        )
        assert result.converged
        assert all(n.decoded_ok for n in result.report.nodes)

    def test_single_peer_chain_from_server(self):
        result = run_loopback_sync(_small_config(peers=1, seed=14))
        assert result.converged
        assert result.report.nodes[0].decoded_ok


class TestFailureRecovery:
    def test_killed_peer_triggers_repair_and_others_converge(self):
        result = run_loopback_sync(_small_config(
            peers=5, generation_size=8, generations=3, seed=15,
            kill_peer=0, kill_at_progress=0.2,
        ))
        assert result.killed == 0
        assert result.repairs >= 1
        assert result.converged
        survivors = [n for i, n in enumerate(result.report.nodes) if i != 0]
        assert all(n.decoded_ok for n in survivors)

    def test_kill_config_validation(self):
        with pytest.raises(ValueError):
            LoopbackConfig(peers=3, kill_peer=3)
        with pytest.raises(ValueError):
            LoopbackConfig(peers=0)
        with pytest.raises(ValueError):
            LoopbackConfig(k=2, d=3)
