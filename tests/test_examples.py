"""Smoke tests: every example script runs to completion.

Examples are user-facing documentation; a broken one is a broken
README.  Each runs in-process with its module-level constants shrunk
where needed for test-suite speed.
"""

import runpy
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

ALL_EXAMPLES = sorted(p.name for p in EXAMPLES.glob("*.py"))


def test_every_example_is_covered():
    """Keep this file honest: new example scripts need a test entry."""
    covered = {
        "quickstart.py",
        "live_streaming.py",
        "file_download.py",
        "adversarial_attack.py",
        "heterogeneous_swarm.py",
        "self_sustaining_swarm.py",
        "verified_streaming.py",
    }
    assert set(ALL_EXAMPLES) == covered


def run_example(name: str, capsys) -> str:
    """Execute an example as __main__ and return its stdout."""
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


@pytest.mark.parametrize(
    "name,needle",
    [
        ("quickstart.py", "bit-exact decode at every peer: True"),
        ("adversarial_attack.py", "random row insertion"),
        ("heterogeneous_swarm.py", "decodes base layer"),
        ("self_sustaining_swarm.py", "completion after detach: 100%"),
        ("verified_streaming.py", "bit-exact: True"),
    ],
)
def test_example_runs(name, needle, capsys):
    out = run_example(name, capsys)
    assert needle in out


@pytest.mark.slow
@pytest.mark.parametrize(
    "name,needle",
    [
        ("live_streaming.py", "every completed decode bit-exact: True"),
        ("file_download.py", "all decodes bit-exact: True"),
    ],
)
def test_slow_example_runs(name, needle, capsys):
    out = run_example(name, capsys)
    assert needle in out
