"""Unit tests for GF(2^8) dense linear algebra."""

import numpy as np
import pytest

from repro.gf import linalg
from repro.gf.tables import MUL


def reference_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Naive triple-loop product for cross-checking."""
    out = np.zeros((a.shape[0], b.shape[1]), dtype=np.uint8)
    for i in range(a.shape[0]):
        for j in range(b.shape[1]):
            acc = 0
            for l in range(a.shape[1]):
                acc ^= int(MUL[a[i, l], b[l, j]])
            out[i, j] = acc
    return out


class TestMatmul:
    def test_identity(self, rng):
        a = linalg.random_matrix(5, 5, rng)
        eye = np.eye(5, dtype=np.uint8)
        assert np.array_equal(linalg.matmul(a, eye), a)
        assert np.array_equal(linalg.matmul(eye, a), a)

    def test_matches_reference(self, rng):
        a = linalg.random_matrix(4, 6, rng)
        b = linalg.random_matrix(6, 3, rng)
        assert np.array_equal(linalg.matmul(a, b), reference_matmul(a, b))

    def test_shape_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            linalg.matmul(linalg.random_matrix(2, 3, rng), linalg.random_matrix(2, 3, rng))

    def test_associative(self, rng):
        a = linalg.random_matrix(3, 4, rng)
        b = linalg.random_matrix(4, 5, rng)
        c = linalg.random_matrix(5, 2, rng)
        left = linalg.matmul(linalg.matmul(a, b), c)
        right = linalg.matmul(a, linalg.matmul(b, c))
        assert np.array_equal(left, right)

    def test_matvec(self, rng):
        a = linalg.random_matrix(4, 4, rng)
        v = rng.integers(0, 256, size=4, dtype=np.uint8)
        expected = linalg.matmul(a, v[:, None])[:, 0]
        assert np.array_equal(linalg.matvec(a, v), expected)

    def test_non_2d_raises(self):
        with pytest.raises(ValueError):
            linalg.matmul(np.zeros(3, dtype=np.uint8), np.zeros((3, 3), dtype=np.uint8))


class TestRref:
    def test_identity_unchanged(self):
        eye = np.eye(4, dtype=np.uint8)
        reduced, pivots = linalg.rref(eye)
        assert np.array_equal(reduced, eye)
        assert pivots == [0, 1, 2, 3]

    def test_zero_matrix(self):
        reduced, pivots = linalg.rref(np.zeros((3, 3), dtype=np.uint8))
        assert pivots == []
        assert not reduced.any()

    def test_pivot_columns_are_unit(self, rng):
        a = linalg.random_matrix(5, 7, rng)
        reduced, pivots = linalg.rref(a)
        for row, col in enumerate(pivots):
            column = reduced[:, col]
            assert column[row] == 1
            assert np.count_nonzero(column) == 1

    def test_row_space_preserved(self, rng):
        a = linalg.random_matrix(4, 6, rng)
        reduced, _ = linalg.rref(a)
        stacked = np.vstack([a, reduced])
        assert linalg.rank(stacked) == linalg.rank(a)

    def test_ncols_limits_pivot_region(self, rng):
        a = linalg.random_matrix(3, 6, rng)
        _, pivots = linalg.rref(a, ncols=2)
        assert all(p < 2 for p in pivots)


class TestRankSolveInverse:
    def test_rank_of_identity(self):
        assert linalg.rank(np.eye(6, dtype=np.uint8)) == 6

    def test_rank_of_duplicated_rows(self, rng):
        row = rng.integers(0, 256, size=5, dtype=np.uint8)
        a = np.vstack([row, row, row])
        assert linalg.rank(a) == 1

    def test_rank_empty(self):
        assert linalg.rank(np.zeros((0, 4), dtype=np.uint8)) == 0

    def test_solve_roundtrip(self, rng):
        a = linalg.random_full_rank(6, rng)
        x = rng.integers(0, 256, size=6, dtype=np.uint8)
        b = linalg.matvec(a, x)
        assert np.array_equal(linalg.solve(a, b), x)

    def test_solve_matrix_rhs(self, rng):
        a = linalg.random_full_rank(4, rng)
        x = linalg.random_matrix(4, 3, rng)
        b = linalg.matmul(a, x)
        assert np.array_equal(linalg.solve(a, b), x)

    def test_solve_singular_raises(self):
        singular = np.zeros((3, 3), dtype=np.uint8)
        singular[0, 0] = 1
        with pytest.raises(np.linalg.LinAlgError):
            linalg.solve(singular, np.ones(3, dtype=np.uint8))

    def test_solve_non_square_raises(self, rng):
        with pytest.raises(ValueError):
            linalg.solve(linalg.random_matrix(3, 4, rng), np.ones(3, dtype=np.uint8))

    def test_inverse(self, rng):
        a = linalg.random_full_rank(5, rng)
        eye = np.eye(5, dtype=np.uint8)
        assert np.array_equal(linalg.matmul(a, linalg.inverse(a)), eye)
        assert np.array_equal(linalg.matmul(linalg.inverse(a), a), eye)

    def test_is_full_rank(self, rng):
        assert linalg.is_full_rank(linalg.random_full_rank(4, rng))
        assert not linalg.is_full_rank(np.zeros((2, 2), dtype=np.uint8))

    def test_nullity(self, rng):
        a = linalg.random_full_rank(4, rng)
        assert linalg.nullity(a) == 0
        wide = np.hstack([a, a])
        assert linalg.nullity(wide) == 4


class TestVandermonde:
    def test_shape_and_first_column(self):
        v = linalg.vandermonde(6, 4)
        assert v.shape == (6, 4)
        assert np.all(v[:, 0] == 1)

    def test_any_square_submatrix_invertible(self, rng):
        v = linalg.vandermonde(10, 4)
        for _ in range(20):
            rows = sorted(rng.choice(10, size=4, replace=False))
            assert linalg.rank(v[rows, :]) == 4

    def test_too_many_rows_raises(self):
        with pytest.raises(ValueError):
            linalg.vandermonde(256, 4)


class TestRandomMatrices:
    def test_random_full_rank_is_full_rank(self, rng):
        for n in (1, 2, 8):
            assert linalg.rank(linalg.random_full_rank(n, rng)) == n

    def test_random_matrix_range(self, rng):
        a = linalg.random_matrix(10, 10, rng)
        assert a.dtype == np.uint8
