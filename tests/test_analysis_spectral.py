"""Unit tests for spectral expansion measurements."""

import numpy as np

from repro.analysis import spectral_gap, symmetric_adjacency
from repro.baselines import ChainOverlay
from repro.core import SERVER, OverlayNetwork, RandomGraphOverlay
from repro.core.topology import OverlayGraph


class TestAdjacency:
    def test_symmetry_and_multiplicity(self, rng):
        from repro.core import ThreadMatrix
        from repro.core.topology import build_overlay_graph

        m = ThreadMatrix(k=4)
        m.join(0, 2, rng, columns=[0, 1])
        m.join(1, 2, rng, columns=[0, 1])  # double edge 0 -> 1
        adjacency, nodes = symmetric_adjacency(build_overlay_graph(m))
        assert np.array_equal(adjacency, adjacency.T)
        i, j = nodes.index(0), nodes.index(1)
        assert adjacency[i, j] == 2

    def test_server_optional(self, small_net):
        _, with_server = symmetric_adjacency(small_net.graph(), include_server=True)
        _, without = symmetric_adjacency(small_net.graph(), include_server=False)
        assert SERVER in with_server
        assert SERVER not in without


class TestSpectralGap:
    def test_complete_graph_large_gap(self):
        graph = OverlayGraph()
        for v in range(6):
            graph.add_node(v)
        for u in range(6):
            for v in range(6):
                if u != v:
                    graph.add_edge(u, v)
        assert spectral_gap(graph, include_server=False) > 0.4

    def test_path_graph_tiny_gap(self):
        graph = OverlayGraph()
        for v in range(40):
            graph.add_node(v)
        for v in range(39):
            graph.add_edge(v, v + 1)
        assert spectral_gap(graph, include_server=False) < 0.02

    def test_trivial_graphs(self):
        graph = OverlayGraph()
        assert spectral_gap(graph, include_server=False) == 0.0
        graph.add_node(0)
        assert spectral_gap(graph, include_server=False) == 0.0

    def test_gap_in_unit_interval(self, small_net):
        gap = spectral_gap(small_net.graph())
        assert 0.0 <= gap <= 1.0

    def test_random_graph_beats_chains(self):
        """The expander story: random overlays have a much larger gap
        than the chain baseline at equal size."""
        overlay = RandomGraphOverlay(k=12, d=3, seed=3)
        overlay.grow(120)
        random_gap = spectral_gap(overlay.to_overlay_graph())
        chains = ChainOverlay(k=12, population=120).to_overlay_graph()
        chain_gap = spectral_gap(chains)
        assert random_gap > 5 * chain_gap

    def test_curtain_gap_shrinks_with_population(self):
        """Curtain chains grow linearly, so its gap decays — consistent
        with the linear-delay finding of E6."""
        gaps = []
        for n in (50, 200):
            net = OverlayNetwork(k=12, d=3, seed=4)
            net.grow(n)
            gaps.append(spectral_gap(net.graph()))
        assert gaps[1] < gaps[0]
