"""Unit tests for the §6 random-graph (low-delay) overlay variant."""

import math

import pytest

from repro.core import RandomGraphOverlay


class TestConstruction:
    def test_bootstrap_slots(self):
        overlay = RandomGraphOverlay(k=8, d=2, seed=1)
        assert overlay.population == 0
        assert len(overlay.edges) == 8
        assert all(v is None for _, v in overlay.edges)

    def test_join_preserves_edge_count(self):
        overlay = RandomGraphOverlay(k=8, d=2, seed=2)
        for expected in range(1, 20):
            overlay.join()
            # each join removes d edges and adds 2d
            assert len(overlay.edges) == 8 + expected * 2

    def test_degrees_are_d(self):
        overlay = RandomGraphOverlay(k=9, d=3, seed=3)
        overlay.grow(40)
        graph = overlay.to_overlay_graph()
        for node in graph.nodes:
            assert graph.in_degree(node) == 3
            assert graph.out_degree(node) <= 3  # unserved slots excluded

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RandomGraphOverlay(k=2, d=3)
        with pytest.raises(ValueError):
            RandomGraphOverlay(k=4, d=0)


class TestLeave:
    def test_leave_preserves_degrees(self):
        overlay = RandomGraphOverlay(k=8, d=2, seed=4)
        nodes = overlay.grow(30)
        overlay.leave(nodes[10])
        graph = overlay.to_overlay_graph()
        assert nodes[10] not in graph.nodes
        for node in graph.nodes:
            assert graph.in_degree(node) == 2

    def test_leave_unknown_raises(self):
        overlay = RandomGraphOverlay(k=8, d=2, seed=5)
        with pytest.raises(KeyError):
            overlay.leave(123)

    def test_leave_keeps_edge_count(self):
        overlay = RandomGraphOverlay(k=8, d=2, seed=6)
        nodes = overlay.grow(20)
        before = len(overlay.edges)
        overlay.leave(nodes[5])
        assert len(overlay.edges) == before - 2 * 2 + 2  # -in -out +spliced


class TestDelayScaling:
    def test_depth_logarithmic(self):
        """§6: random-graph depth grows ~log N, not linearly."""
        overlay = RandomGraphOverlay(k=12, d=3, seed=7)
        overlay.grow(800)
        depths = overlay.depths_from_server()
        assert len(depths) == 800  # everyone reachable
        max_depth = max(depths.values())
        # generous logarithmic envelope (base d expansion)
        assert max_depth <= 6 * math.log(800, 3) + 6

    def test_depth_much_smaller_than_population(self):
        overlay = RandomGraphOverlay(k=12, d=3, seed=8)
        overlay.grow(400)
        assert max(overlay.depths_from_server().values()) < 40

    def test_cycles_usually_appear(self):
        """The price of low delay: acyclicity is not maintained."""
        overlay = RandomGraphOverlay(k=8, d=3, seed=9)
        overlay.grow(300)
        assert not overlay.is_acyclic()
