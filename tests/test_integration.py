"""Integration tests: whole-system scenarios crossing module boundaries."""

import numpy as np

from repro.coding import GenerationParams
from repro.core import CongestionController, OverlayNetwork
from repro.failures import IIDFailures, PoissonChurn, apply_failures
from repro.sim import (
    BroadcastSimulation,
    SessionConfig,
    Simulator,
    run_session,
)


class TestBroadcastUnderHeavyChurn:
    def test_content_integrity_through_full_lifecycle(self):
        """Joins, failures, repairs, leaves and loss during one download:
        every surviving node must decode the exact original bytes."""
        result = run_session(
            SessionConfig(
                k=14, d=3, population=30, content_size=2000,
                generation_size=8, payload_size=64, loss_rate=0.03,
                fail_probability=0.01, repair_interval=8, join_rate=1,
                leave_probability=0.005, max_slots=2500, seed=99,
            )
        )
        completed = [n for n in result.report.nodes if n.completed_at is not None]
        assert len(completed) >= 0.9 * len(result.report.nodes)
        assert all(n.decoded_ok for n in completed)
        result.net.matrix.check_invariants()

    def test_repeated_batch_failures_with_repairs(self, rng):
        """Alternating failure waves and repairs keep the overlay sound."""
        net = OverlayNetwork(k=16, d=2, seed=7)
        net.grow(120)
        for _ in range(15):
            apply_failures(net, IIDFailures(0.05), rng)
            net.repair_all()
            net.grow(3)
        net.matrix.check_invariants()
        histogram = net.connectivity_histogram()
        assert histogram == {2: net.population}


class TestEventEngineWithDataPlane:
    def test_poisson_churn_then_broadcast(self):
        """Run churn on the event engine, then broadcast over the result."""
        net = OverlayNetwork(k=12, d=2, seed=17)
        net.grow(30)
        sim = Simulator()
        churn = PoissonChurn(
            net, sim, join_rate=1.0, mean_lifetime=40.0,
            failure_fraction=0.5, repair_delay=2.0,
            rng=np.random.default_rng(18), min_population=10,
        )
        churn.start()
        sim.run(until=60.0)
        net.repair_all()
        rng = np.random.default_rng(19)
        content = bytes(rng.integers(0, 256, size=800, dtype=np.uint8))
        broadcast = BroadcastSimulation(
            net, content, GenerationParams(generation_size=6, payload_size=32),
            seed=20,
        )
        report = broadcast.run_until_complete(max_slots=1200)
        assert report.completion_fraction == 1.0
        assert all(n.decoded_ok for n in report.nodes)


class TestCongestionDuringBroadcast:
    def test_thread_shedding_degrades_gracefully(self):
        """A congested node sheds a thread mid-broadcast; the swarm still
        completes and the shed node still decodes (more slowly)."""
        net = OverlayNetwork(k=12, d=3, seed=23)
        net.grow(25)
        controller = CongestionController(net.server, drop_after=1, restore_after=3)
        rng = np.random.default_rng(24)
        content = bytes(rng.integers(0, 256, size=1000, dtype=np.uint8))
        sim = BroadcastSimulation(
            net, content, GenerationParams(generation_size=8, payload_size=50),
            seed=25,
        )
        victim = net.matrix.node_ids[10]
        sim.run(5)
        controller.observe(victim, congested=True)  # sheds one thread
        assert net.matrix.row(victim).degree == 2
        report = sim.run_until_complete(max_slots=1500)
        assert report.completion_fraction == 1.0
        assert all(n.decoded_ok for n in report.nodes)
        net.matrix.check_invariants()


class TestHeterogeneousBroadcast:
    def test_mixed_degrees_complete(self):
        from repro.core import BandwidthClass, join_population

        net = OverlayNetwork(k=16, d=4, seed=29)
        rng = np.random.default_rng(30)
        join_population(
            net,
            [BandwidthClass("dsl", 2), BandwidthClass("t1", 6)],
            weights=[2, 1],
            count=24,
            rng=rng,
        )
        content = bytes(rng.integers(0, 256, size=800, dtype=np.uint8))
        sim = BroadcastSimulation(
            net, content, GenerationParams(generation_size=6, payload_size=40),
            seed=31,
        )
        report = sim.run_until_complete(max_slots=1500)
        assert report.completion_fraction == 1.0
        # T1 nodes (degree 6) should on average finish no later than DSL
        degrees = {n: net.matrix.row(n).degree for n in net.matrix.node_ids}
        t1 = [r.completed_at for r in report.nodes if degrees[r.node_id] == 6]
        dsl = [r.completed_at for r in report.nodes if degrees[r.node_id] == 2]
        assert np.mean(t1) <= np.mean(dsl) + 2.0


class TestLongRunningStability:
    def test_thousand_membership_events(self, rng):
        """A long random walk of membership operations stays consistent."""
        net = OverlayNetwork(k=20, d=2, seed=37, insert_mode="uniform")
        net.grow(50)
        for step in range(1000):
            roll = rng.random()
            if roll < 0.4:
                net.join()
            elif roll < 0.6 and net.population > 20:
                net.leave(net.random_working_node())
            elif roll < 0.8 and net.working_nodes:
                net.fail(net.random_working_node())
            else:
                net.repair_all()
        net.repair_all()
        net.matrix.check_invariants()
        assert all(c == 2 for c in net.connectivities().values())
