"""Shared fixtures for the test suite."""

from __future__ import annotations

import signal
import threading

import numpy as np
import pytest

from repro.core import OverlayNetwork

try:
    import pytest_timeout  # noqa: F401

    _HAVE_PYTEST_TIMEOUT = True
except ImportError:
    _HAVE_PYTEST_TIMEOUT = False

#: Hard cap applied to every test when no ``timeout`` marker overrides
#: it.  CI installs pytest-timeout (which takes precedence and handles
#: its own enforcement); this SIGALRM fallback keeps local runs hang-
#: proof without adding a dependency.
_DEFAULT_TEST_TIMEOUT = 120


class _TestTimeout(BaseException):
    """Raised by the SIGALRM fallback: a BaseException so it cannot be
    swallowed by ``except Exception`` / ``except TimeoutError`` blocks
    inside the code under test."""


if not _HAVE_PYTEST_TIMEOUT and hasattr(signal, "SIGALRM"):

    @pytest.fixture(autouse=True)
    def _per_test_timeout(request):
        marker = request.node.get_closest_marker("timeout")
        seconds = _DEFAULT_TEST_TIMEOUT
        if marker is not None and marker.args:
            seconds = int(marker.args[0])
        if (
            seconds <= 0
            or threading.current_thread() is not threading.main_thread()
        ):
            yield
            return

        def _alarm(signum, frame):
            raise _TestTimeout(
                f"{request.node.nodeid} exceeded the {seconds}s hard cap "
                "(SIGALRM fallback; install pytest-timeout for nicer output)"
            )

        previous = signal.signal(signal.SIGALRM, _alarm)
        signal.alarm(seconds)
        try:
            yield
        finally:
            signal.alarm(0)
            signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator, fresh per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_net() -> OverlayNetwork:
    """A 40-node overlay with k=12, d=3 (append ordering)."""
    net = OverlayNetwork(k=12, d=3, seed=77)
    net.grow(40)
    return net


@pytest.fixture
def tiny_net() -> OverlayNetwork:
    """A 10-node overlay with k=6, d=2 (small enough for exact defects)."""
    net = OverlayNetwork(k=6, d=2, seed=11)
    net.grow(10)
    return net


@pytest.fixture
def uniform_net() -> OverlayNetwork:
    """A 40-node overlay using §5 random row insertion."""
    net = OverlayNetwork(k=12, d=3, seed=78, insert_mode="uniform")
    net.grow(40)
    return net
