"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import OverlayNetwork


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator, fresh per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_net() -> OverlayNetwork:
    """A 40-node overlay with k=12, d=3 (append ordering)."""
    net = OverlayNetwork(k=12, d=3, seed=77)
    net.grow(40)
    return net


@pytest.fixture
def tiny_net() -> OverlayNetwork:
    """A 10-node overlay with k=6, d=2 (small enough for exact defects)."""
    net = OverlayNetwork(k=6, d=2, seed=11)
    net.grow(10)
    return net


@pytest.fixture
def uniform_net() -> OverlayNetwork:
    """A 40-node overlay using §5 random row insertion."""
    net = OverlayNetwork(k=12, d=3, seed=78, insert_mode="uniform")
    net.grow(40)
    return net
