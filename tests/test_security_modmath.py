"""Unit tests for Z_q arithmetic and byte/symbol packing."""

import numpy as np
import pytest

from repro.security.modmath import (
    Q,
    add_mod,
    bytes_to_symbols,
    inv_mod,
    matmul_mod,
    mul_mod,
    rank_mod,
    rref_mod,
    solve_mod,
    sub_mod,
    symbols_to_bytes,
)


class TestScalarOps:
    def test_q_is_mersenne_prime(self):
        assert Q == 2**31 - 1

    def test_add_sub_roundtrip(self, rng):
        a = rng.integers(0, Q, size=20)
        b = rng.integers(0, Q, size=20)
        assert np.array_equal(sub_mod(add_mod(a, b), b), a % Q)

    def test_mul_no_overflow_at_extremes(self):
        assert mul_mod(Q - 1, Q - 1) == pow(Q - 1, 2, Q)

    def test_inv_mod(self, rng):
        for _ in range(20):
            a = int(rng.integers(1, Q))
            assert (a * inv_mod(a)) % Q == 1

    def test_inv_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            inv_mod(0)


class TestLinalg:
    def test_matmul_identity(self, rng):
        a = rng.integers(0, Q, size=(4, 4))
        eye = np.eye(4, dtype=np.int64)
        assert np.array_equal(matmul_mod(a, eye), a % Q)

    def test_matmul_shape_check(self, rng):
        with pytest.raises(ValueError):
            matmul_mod(np.zeros((2, 3)), np.zeros((2, 3)))

    def test_rref_pivots_unit(self, rng):
        a = rng.integers(0, Q, size=(4, 6))
        reduced, pivots = rref_mod(a)
        for row, col in enumerate(pivots):
            column = reduced[:, col]
            assert column[row] == 1
            assert np.count_nonzero(column) == 1

    def test_rank_random_full(self, rng):
        a = rng.integers(0, Q, size=(5, 5))
        assert rank_mod(a) == 5  # random matrices mod a 2^31 prime: a.s. full

    def test_rank_duplicates(self, rng):
        row = rng.integers(0, Q, size=6)
        assert rank_mod(np.stack([row, row])) == 1

    def test_solve_roundtrip(self, rng):
        a = rng.integers(0, Q, size=(5, 5))
        x = rng.integers(0, Q, size=5)
        b = matmul_mod(a, x[:, None])[:, 0]
        assert np.array_equal(solve_mod(a, b), x)

    def test_solve_singular_raises(self):
        singular = np.zeros((2, 2), dtype=np.int64)
        with pytest.raises(np.linalg.LinAlgError):
            solve_mod(singular, np.ones(2, dtype=np.int64))


class TestPacking:
    def test_roundtrip(self, rng):
        data = bytes(rng.integers(0, 256, size=200, dtype=np.uint8))
        symbols = bytes_to_symbols(data, symbols_per_packet=8)
        assert symbols.shape[1] == 8
        assert symbols.max() < Q
        assert symbols_to_bytes(symbols, len(data)) == data

    def test_empty(self):
        symbols = bytes_to_symbols(b"", symbols_per_packet=4)
        assert symbols.shape == (1, 4)
        assert symbols_to_bytes(symbols, 0) == b""

    def test_symbols_fit_24_bits(self, rng):
        data = bytes([255] * 30)
        symbols = bytes_to_symbols(data, symbols_per_packet=5)
        assert symbols.max() == 0xFFFFFF

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            bytes_to_symbols(b"abc", symbols_per_packet=0)
        with pytest.raises(ValueError):
            symbols_to_bytes(np.zeros((1, 2), dtype=np.int64), 100)
