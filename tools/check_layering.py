#!/usr/bin/env python
"""Layering contract for the sans-IO protocol core.

``repro.protocol`` must stay pure: event in, effects out, no I/O and no
knowledge of any driver.  This checker walks the package's ASTs and
rejects any import of

* ``asyncio`` (or any stdlib I/O loop: ``socket``, ``selectors``),
* ``repro.net`` / ``repro.sim`` / ``repro.protocol_sim`` — the drivers
  that pump the engines must depend on the core, never the reverse —

whether spelled absolute or relative (``from ..net import ...``).

The same contract covers the ``repro.obs`` core: registries, flight
recorder, exporters, and instruments are snapshot-on-read data
structures any driver may embed, so everything except the explicitly
I/O module ``obs/http.py`` must stay free of event loops and driver
imports.  (``obs`` may import ``repro.protocol`` — instruments classify
engine effects — but never the reverse; engines reach obs only through
duck-typed attributes.)

``repro.dataplane`` — the data-plane twin of the protocol core — is
held to the identical bans: it may import the pure coding layer (the
recoder/encoder it wraps) and the protocol core's trace vocabulary, but
never an event loop or a driver package.

Run from the repo root (CI's lint job does, and a tier-1 test wraps
it):

    python tools/check_layering.py
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

_REPRO = Path(__file__).resolve().parent.parent / "src" / "repro"
PROTOCOL_DIR = _REPRO / "protocol"
OBS_DIR = _REPRO / "obs"
DATAPLANE_DIR = _REPRO / "dataplane"

#: Modules of ``repro.obs`` that are allowed to do I/O (everything else
#: in the package must stay sans-IO like the protocol core).
OBS_IO_MODULES = {"http.py"}

#: Module roots the protocol core may never import.
BANNED_ROOTS = {
    "asyncio",
    "socket",
    "selectors",
    "repro.net",
    "repro.sim",
    "repro.protocol_sim",
}

#: Sibling packages of ``repro.protocol`` that are off-limits when
#: reached by relative import (``from ..net import ...``).
BANNED_SIBLINGS = {"net", "sim", "protocol_sim"}


def _banned(module: str) -> bool:
    return any(
        module == root or module.startswith(root + ".")
        for root in BANNED_ROOTS
    )


def check_file(path: Path) -> list[str]:
    """Return one violation string per banned import in ``path``."""
    tree = ast.parse(path.read_text(), filename=str(path))
    violations = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if _banned(alias.name):
                    violations.append(
                        f"{path}:{node.lineno}: imports {alias.name!r}"
                    )
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if node.level == 0 and _banned(module):
                violations.append(
                    f"{path}:{node.lineno}: imports from {module!r}"
                )
            elif node.level >= 2:
                # from ..<sibling> import ... escapes the package; only
                # pure layers (repro.core, repro.coding) are allowed.
                root = module.split(".")[0] if module else ""
                if root in BANNED_SIBLINGS:
                    violations.append(
                        f"{path}:{node.lineno}: imports from "
                        f"{'.' * node.level}{module!r}"
                    )
    return violations


def check_protocol_package(root: Path = PROTOCOL_DIR) -> list[str]:
    violations = []
    for path in sorted(root.rglob("*.py")):
        violations.extend(check_file(path))
    return violations


def check_obs_package(root: Path = OBS_DIR) -> list[str]:
    """The obs core (everything but ``http.py``) is held to the same bans."""
    violations = []
    for path in sorted(root.rglob("*.py")):
        if path.name in OBS_IO_MODULES:
            continue
        violations.extend(check_file(path))
    return violations


def check_dataplane_package(root: Path = DATAPLANE_DIR) -> list[str]:
    """The data-plane engines are a sans-IO core like the protocol's."""
    violations = []
    for path in sorted(root.rglob("*.py")):
        violations.extend(check_file(path))
    return violations


def main() -> int:
    status = 0
    for name, directory, checker in (
        ("repro.protocol", PROTOCOL_DIR, check_protocol_package),
        ("repro.obs core", OBS_DIR, check_obs_package),
        ("repro.dataplane", DATAPLANE_DIR, check_dataplane_package),
    ):
        if not directory.is_dir():
            print(f"error: {directory} not found", file=sys.stderr)
            return 2
        violations = checker()
        if violations:
            print(f"{name} layering violations:", file=sys.stderr)
            for violation in violations:
                print(f"  {violation}", file=sys.stderr)
            status = 1
        else:
            print(f"{name} layering: clean")
    return status


if __name__ == "__main__":
    sys.exit(main())
